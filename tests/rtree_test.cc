#include "index/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "core/box.h"
#include "core/rng.h"

namespace sthist {
namespace {

// Reference predicate for BoxOverlap::kClosed: closed intervals intersect in
// every dimension (touching boundaries and zero-extent boxes count).
bool ClosedOverlap(const Box& a, const Box& b) {
  for (size_t d = 0; d < a.dim(); ++d) {
    if (a.lo(d) > b.hi(d) || b.lo(d) > a.hi(d)) return false;
  }
  return true;
}

// Random box inside [0, 110)^dim; with probability `degenerate_p` each
// dimension independently collapses to zero extent.
Box RandomBox(size_t dim, Rng* rng, double degenerate_p = 0.0) {
  Box box = Box::Cube(dim, 0.0, 1.0);
  for (size_t d = 0; d < dim; ++d) {
    const double lo = rng->Uniform(0.0, 80.0);
    const double extent =
        rng->Bernoulli(degenerate_p) ? 0.0 : rng->Uniform(0.0, 30.0);
    box.set_lo(d, lo);
    box.set_hi(d, lo + extent);
  }
  return box;
}

std::vector<uint64_t> BruteProbe(const std::vector<RTree::Entry>& entries,
                                 const Box& query, BoxOverlap mode) {
  std::vector<uint64_t> out;
  for (const RTree::Entry& e : entries) {
    const bool hit = mode == BoxOverlap::kOpenInterior
                         ? e.box.Intersects(query)
                         : ClosedOverlap(e.box, query);
    if (hit) out.push_back(e.id);
  }
  return out;
}

std::vector<uint64_t> Sorted(std::vector<uint64_t> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ExpectProbesMatchBruteForce(const RTree& tree,
                                 const std::vector<RTree::Entry>& entries,
                                 size_t dim, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < 200; ++i) {
    const Box query = RandomBox(dim, &rng, /*degenerate_p=*/0.1);
    for (BoxOverlap mode : {BoxOverlap::kOpenInterior, BoxOverlap::kClosed}) {
      std::vector<uint64_t> got;
      tree.Probe(query, mode, &got);
      EXPECT_EQ(Sorted(std::move(got)), Sorted(BruteProbe(entries, query, mode)))
          << "dim=" << dim << " query=" << query.ToString()
          << " mode=" << (mode == BoxOverlap::kClosed ? "closed" : "open");
    }
  }
}

TEST(RTreeTest, EmptyTreeProbesNothing) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  std::vector<uint64_t> out;
  tree.Probe(Box::Cube(3, 0.0, 100.0), BoxOverlap::kOpenInterior, &out);
  tree.Probe(Box::Cube(3, 0.0, 100.0), BoxOverlap::kClosed, &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, ProbeAppendsWithoutClearing) {
  RTree tree;
  tree.Insert(Box::Cube(2, 0.0, 10.0), 7);
  std::vector<uint64_t> out = {42};
  tree.Probe(Box::Cube(2, 1.0, 2.0), BoxOverlap::kOpenInterior, &out);
  EXPECT_EQ(out, (std::vector<uint64_t>{42, 7}));
}

class RTreeRandomTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t, size_t>> {};

TEST_P(RTreeRandomTest, BulkMatchesBruteForce) {
  const auto [dim, seed, count] = GetParam();
  Rng rng(seed);
  std::vector<RTree::Entry> entries;
  for (size_t i = 0; i < count; ++i) {
    entries.push_back({RandomBox(dim, &rng, /*degenerate_p=*/0.05), i});
  }
  RTree tree;
  tree.Bulk(entries);
  EXPECT_EQ(tree.size(), entries.size());
  ExpectProbesMatchBruteForce(tree, entries, dim, seed ^ 0x9e3779b9);
}

TEST_P(RTreeRandomTest, InsertMatchesBruteForce) {
  const auto [dim, seed, count] = GetParam();
  Rng rng(seed);
  std::vector<RTree::Entry> entries;
  RTree tree;
  for (size_t i = 0; i < count; ++i) {
    entries.push_back({RandomBox(dim, &rng, /*degenerate_p=*/0.05), i});
    tree.Insert(entries.back().box, entries.back().id);
  }
  EXPECT_EQ(tree.size(), entries.size());
  ExpectProbesMatchBruteForce(tree, entries, dim, seed ^ 0x51ed270b);
}

TEST_P(RTreeRandomTest, BulkThenInsertMatchesBruteForce) {
  const auto [dim, seed, count] = GetParam();
  Rng rng(seed);
  std::vector<RTree::Entry> entries;
  for (size_t i = 0; i < count; ++i) {
    entries.push_back({RandomBox(dim, &rng, /*degenerate_p=*/0.05), i});
  }
  RTree tree;
  const size_t half = count / 2;
  tree.Bulk({entries.begin(), entries.begin() + half});
  for (size_t i = half; i < count; ++i) {
    tree.Insert(entries[i].box, entries[i].id);
  }
  EXPECT_EQ(tree.size(), entries.size());
  ExpectProbesMatchBruteForce(tree, entries, dim, seed ^ 0xc2b2ae35);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RTreeRandomTest,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 3, 5),
                       ::testing::Values<uint64_t>(3, 17),
                       ::testing::Values<size_t>(1, 7, 64, 400)),
    [](const auto& info) {
      return "dim" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param)) + "_n" +
             std::to_string(std::get<2>(info.param));
    });

TEST(RTreeTest, DegenerateEntryProbeModes) {
  RTree tree;
  Box inside = Box::Cube(2, 5.0, 5.0);    // Zero extent, strictly interior.
  Box boundary = Box::Cube(2, 10.0, 10.0);  // Zero extent, on the boundary.
  tree.Insert(inside, 1);
  tree.Insert(boundary, 2);
  Box covering = Box::Cube(2, 0.0, 10.0);
  std::vector<uint64_t> open, closed;
  tree.Probe(covering, BoxOverlap::kOpenInterior, &open);
  tree.Probe(covering, BoxOverlap::kClosed, &closed);
  // Box::Intersects (the kOpenInterior predicate) admits a degenerate box
  // strictly inside the query but rejects one touching its boundary; the
  // closed mode admits both.
  EXPECT_EQ(open, std::vector<uint64_t>{1});
  EXPECT_EQ(Sorted(std::move(closed)), (std::vector<uint64_t>{1, 2}));
}

TEST(RTreeTest, TouchingBoxesVisibleOnlyToClosedProbes) {
  RTree tree;
  Box left = Box::Cube(2, 0.0, 5.0);
  tree.Insert(left, 1);
  Box touching = Box::Cube(2, 5.0, 10.0);  // Shares only the corner at (5,5).
  std::vector<uint64_t> open, closed;
  tree.Probe(touching, BoxOverlap::kOpenInterior, &open);
  tree.Probe(touching, BoxOverlap::kClosed, &closed);
  EXPECT_TRUE(open.empty());
  EXPECT_EQ(closed, std::vector<uint64_t>{1});
}

TEST(RTreeTest, ClearResetsToEmpty) {
  Rng rng(5);
  RTree tree;
  for (uint64_t i = 0; i < 50; ++i) tree.Insert(RandomBox(3, &rng), i);
  EXPECT_EQ(tree.size(), 50u);
  tree.Clear();
  EXPECT_TRUE(tree.empty());
  std::vector<uint64_t> out;
  tree.Probe(Box::Cube(3, 0.0, 200.0), BoxOverlap::kClosed, &out);
  EXPECT_TRUE(out.empty());
  // The tree is reusable after Clear.
  tree.Insert(Box::Cube(3, 0.0, 1.0), 9);
  tree.Probe(Box::Cube(3, 0.0, 200.0), BoxOverlap::kClosed, &out);
  EXPECT_EQ(out, std::vector<uint64_t>{9});
}

// Regression for the high-dimensional insert degeneracy: with 16 dimensions
// and near-zero extents, every box volume (and every volume *enlargement*)
// underflows to exactly 0.0, so the volume-guided descent tied on every node
// and dumped all inserts down one arbitrary side — leaves ended up covering
// wildly overlapping regions and probes degraded toward full scans. The
// margin (summed extent) tiebreak keeps the descent discriminating, so a
// point probe visits O(depth) nodes, not O(nodes).
TEST(RTreeTest, HighDimUnderflowInsertsStayDiscriminating) {
  constexpr size_t kDim = 16;
  constexpr size_t kCount = 512;
  // Points spread along dimension 0, identical elsewhere: every enclosing
  // box has zero extent in dimensions 1..15, so every volume involved in
  // the descent is exactly 0.0 and only the margin can route.
  std::vector<RTree::Entry> entries;
  for (uint64_t i = 0; i < kCount; ++i) {
    Box box = Box::Cube(kDim, 0.5, 0.5);
    box.set_lo(0, static_cast<double>(i) * 100.0);
    box.set_hi(0, static_cast<double>(i) * 100.0);
    entries.push_back({box, i});
  }
  // Shuffled insert order so the test exercises the descent, not just the
  // append-at-the-end pattern.
  Rng rng(61);
  rng.Shuffle(&entries);
  RTree tree;
  for (const RTree::Entry& e : entries) tree.Insert(e.box, e.id);

  size_t max_visited = 0;
  for (const RTree::Entry& e : entries) {
    std::vector<uint64_t> out;
    const size_t visited = tree.Probe(e.box, BoxOverlap::kClosed, &out);
    max_visited = std::max(max_visited, visited);
    EXPECT_EQ(out, std::vector<uint64_t>{e.id}) << "entry " << e.id;
  }
  // A discriminating tree resolves a point probe in a few root-to-leaf
  // paths; the degenerate pre-fix tree visited hundreds of nodes (roughly
  // the whole tree) for the same probes.
  EXPECT_LE(max_visited, 40u);
}

TEST(RTreeTest, DuplicateBoxesAllReported) {
  RTree tree;
  Box box = Box::Cube(2, 1.0, 2.0);
  for (uint64_t i = 0; i < 20; ++i) tree.Insert(box, i);
  std::vector<uint64_t> out;
  tree.Probe(box, BoxOverlap::kOpenInterior, &out);
  std::vector<uint64_t> want(20);
  for (uint64_t i = 0; i < 20; ++i) want[i] = i;
  EXPECT_EQ(Sorted(std::move(out)), want);
}

}  // namespace
}  // namespace sthist

// Fuzz-style corpus test for STHoles::Deserialize: the deserializer is the
// one boundary where a histogram is rebuilt from an untrusted byte stream
// (a file, a network peer, another process's snapshot), so it must return
// nullptr on anything malformed — never crash, hang, overflow an allocation,
// or leak (the ASan+UBSan CI job runs this suite with leak detection on).
//
// Three layers: a hand-written corpus of structured corruptions, exhaustive
// truncation of a real serialization, and seeded random mutations of valid
// output (flips, splices, duplications) — plus the invariant that whatever
// *is* accepted satisfies CheckInvariants and re-serializes stably.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "data/generators.h"
#include "histogram/stholes.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

STHolesConfig Budget(size_t buckets) {
  STHolesConfig config;
  config.max_buckets = buckets;
  return config;
}

// A trained 2-d histogram's serialization, the seed for mutation corpora.
std::string TrainedSerialization(size_t buckets, size_t queries) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 1500;
  data_config.noise_tuples = 300;
  GeneratedData g = MakeCross(data_config);
  Executor executor(g.data);
  STHoles h(g.domain, static_cast<double>(g.data.size()), Budget(buckets));
  WorkloadConfig wc;
  wc.num_queries = queries;
  Workload w = MakeWorkload(g.domain, wc);
  for (const Box& q : w) h.Refine(q, executor);
  return h.Serialize();
}

// The contract under fuzzing: any input either deserializes to a histogram
// that passes its own invariant checks and round-trips stably, or yields
// nullptr. Nothing else — no crash, no abort, no poisoned estimates.
void ExpectRejectedOrValid(const std::string& input) {
  auto hist = STHoles::Deserialize(input, Budget(50));
  if (hist == nullptr) return;
  hist->CheckInvariants();
  EXPECT_TRUE(std::isfinite(hist->TotalFrequency()));
  EXPECT_EQ(STHoles::Deserialize(hist->Serialize(), Budget(50)) != nullptr,
            true);
}

TEST(SerializeFuzzTest, StructuredCorruptionCorpus) {
  const std::vector<std::string> corpus = {
      // Header corruptions.
      "",
      "\n",
      "STHoles",
      "STHoles v2 dim=2 buckets=1\n0 0 1 0 1 5\n",   // Wrong version.
      "stholes v1 dim=2 buckets=1\n0 0 1 0 1 5\n",   // Wrong case.
      "STHoles v1 dim= buckets=1\n0 0 1 0 1 5\n",    // Missing dim value.
      "STHoles v1 dim=0 buckets=1\n0 5\n",           // Zero dimensions.
      "STHoles v1 dim=2 buckets=0\n",                // Zero buckets.
      "STHoles v1 dim=-2 buckets=1\n0 0 1 0 1 5\n",  // Negative wraps huge.
      "STHoles v1 dim=2 buckets=-1\n0 0 1 0 1 5\n",
      "STHoles v1 dim=99999999999999999999 buckets=1\n",  // Overflowing.
      "STHoles v1 dim=2 buckets=18446744073709551615\n0 0 1 0 1 5\n",
      "STHoles v1 dim=1000000 buckets=2\n0 0 1 5\n",  // Dim >> payload.
      "STHoles v1 dim=2 buckets=1000000\n0 0 1 0 1 5\n",  // Buckets >> lines.

      // Non-finite fields: scanf parses nan/inf happily, ordering
      // comparisons silently pass NaN — these must all be rejected.
      "STHoles v1 dim=2 buckets=1\n0 nan 1 0 1 5\n",
      "STHoles v1 dim=2 buckets=1\n0 0 nan 0 1 5\n",
      "STHoles v1 dim=2 buckets=1\n0 0 1 0 1 nan\n",
      "STHoles v1 dim=2 buckets=1\n0 inf inf 0 1 5\n",
      "STHoles v1 dim=2 buckets=1\n0 -inf 1 0 1 5\n",
      "STHoles v1 dim=2 buckets=1\n0 0 1 0 1 inf\n",
      "STHoles v1 dim=2 buckets=2\n0 0 10 0 10 5\n1 1 2 1 2 nan\n",
      "STHoles v1 dim=2 buckets=2\n0 0 10 0 10 5\n1 1 inf 1 2 1\n",

      // Geometry violations.
      "STHoles v1 dim=2 buckets=1\n0 1 0 0 1 5\n",     // Inverted root.
      "STHoles v1 dim=2 buckets=1\n0 0 0 0 0 5\n",     // Zero-volume root.
      "STHoles v1 dim=1 buckets=2\n0 0 10 5\n1 8 20 1\n",  // Child escapes.
      "STHoles v1 dim=1 buckets=3\n0 0 10 5\n1 1 4 1\n1 3 6 1\n",  // Overlap.
      "STHoles v1 dim=1 buckets=3\n0 0 10 5\n1 1 4 1\n1 1 4 1\n",  // Dup.
      "STHoles v1 dim=1 buckets=2\n0 0 10 5\n1 2 5 -1\n",  // Negative freq.
      "STHoles v1 dim=1 buckets=2\n0 0 10 5\n1 5 2 1\n",   // Inverted child.

      // Structure violations.
      "STHoles v1 dim=1 buckets=2\n0 0 10 5\n0 1 2 1\n",   // Second root.
      "STHoles v1 dim=1 buckets=2\n0 0 10 5\n3 1 2 1\n",   // Depth jump.
      "STHoles v1 dim=1 buckets=2\n1 0 10 5\n1 1 2 1\n",   // Root not depth 0.
      "STHoles v1 dim=1 buckets=2\n0 0 10 5\n",            // Missing line.
      "STHoles v1 dim=1 buckets=1\n0 0 10 5\ntrailing garbage\n",
      "STHoles v1 dim=1 buckets=1\n0 0 10 5\n1 1 2 1\n",   // Extra bucket.

      // Type confusion in fields.
      "STHoles v1 dim=1 buckets=1\n0 zero ten 5\n",
      "STHoles v1 dim=1 buckets=1\nx 0 10 5\n",
      "STHoles v1 dim=1 buckets=1\n0 0 10 0x1p4\n",
      "STHoles v1 dim=1 buckets=1\n0 0 1e999 5\n",         // Overflows to inf.
  };
  for (size_t i = 0; i < corpus.size(); ++i) {
    SCOPED_TRACE("corpus entry " + std::to_string(i));
    ExpectRejectedOrValid(corpus[i]);
  }

  // Spot-check entries that must specifically be *rejected* (not merely
  // survive): the NaN/Inf, duplicate-children, oversized-header, and
  // trailing-garbage classes.
  EXPECT_EQ(STHoles::Deserialize(
                "STHoles v1 dim=2 buckets=1\n0 nan 1 0 1 5\n", Budget(50)),
            nullptr);
  EXPECT_EQ(STHoles::Deserialize(
                "STHoles v1 dim=2 buckets=1\n0 0 1 0 1 inf\n", Budget(50)),
            nullptr);
  EXPECT_EQ(STHoles::Deserialize(
                "STHoles v1 dim=1 buckets=3\n0 0 10 5\n1 1 4 1\n1 1 4 1\n",
                Budget(50)),
            nullptr);
  EXPECT_EQ(STHoles::Deserialize("STHoles v1 dim=1000000 buckets=2\n0 0 1 5\n",
                                 Budget(50)),
            nullptr);
  EXPECT_EQ(STHoles::Deserialize(
                "STHoles v1 dim=1 buckets=1\n0 0 10 5\ntrailing garbage\n",
                Budget(50)),
            nullptr);
}

TEST(SerializeFuzzTest, EveryTruncationIsRejectedOrValid) {
  std::string text = TrainedSerialization(25, 60);
  ASSERT_GT(text.size(), 100u);
  // Exhaustive prefix truncation: every cut point either leaves a parseable
  // (shorter) histogram — impossible here because the header pins the bucket
  // count — or is rejected. Either way, no crash.
  for (size_t len = 0; len < text.size(); ++len) {
    ExpectRejectedOrValid(text.substr(0, len));
  }
  // The untruncated text stays accepted.
  EXPECT_NE(STHoles::Deserialize(text, Budget(25)), nullptr);
}

TEST(SerializeFuzzTest, RandomByteMutationsNeverCrash) {
  std::string text = TrainedSerialization(20, 40);
  Rng rng(20240806);
  // Note the explicit length: the pool deliberately leads with a NUL byte,
  // which a plain const char* constructor would truncate away.
  const std::string garbage_bytes("\0\xff\x7f nan-inf.e+123,;", 19);

  for (int iter = 0; iter < 400; ++iter) {
    std::string mutated = text;
    // 1-4 point mutations per iteration: overwrite, insert, or erase.
    int edits = 1 + static_cast<int>(rng.Uniform(0.0, 4.0));
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      size_t pos = static_cast<size_t>(
          rng.Uniform(0.0, static_cast<double>(mutated.size())));
      pos = std::min(pos, mutated.size() - 1);
      double kind = rng.Uniform(0.0, 3.0);
      char byte = garbage_bytes[static_cast<size_t>(rng.Uniform(
          0.0, static_cast<double>(garbage_bytes.size())))];
      if (kind < 1.0) {
        mutated[pos] = byte;
      } else if (kind < 2.0) {
        mutated.insert(pos, 1, byte);
      } else {
        mutated.erase(pos, 1);
      }
    }
    SCOPED_TRACE("mutation iteration " + std::to_string(iter));
    ExpectRejectedOrValid(mutated);
  }
}

TEST(SerializeFuzzTest, LineSpliceAndDuplicationNeverCrash) {
  std::string text = TrainedSerialization(20, 40);
  // Split into lines once.
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_GT(lines.size(), 3u);

  Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::string> shuffled = lines;
    // Structured mutations: drop a line, duplicate a line, swap two lines.
    double kind = rng.Uniform(0.0, 3.0);
    size_t a = 1 + static_cast<size_t>(rng.Uniform(
                       0.0, static_cast<double>(shuffled.size() - 1)));
    size_t b = 1 + static_cast<size_t>(rng.Uniform(
                       0.0, static_cast<double>(shuffled.size() - 1)));
    a = std::min(a, shuffled.size() - 1);
    b = std::min(b, shuffled.size() - 1);
    if (kind < 1.0) {
      shuffled.erase(shuffled.begin() + a);
    } else if (kind < 2.0) {
      shuffled.insert(shuffled.begin() + a, shuffled[b]);
    } else {
      std::swap(shuffled[a], shuffled[b]);
    }
    std::string mutated;
    for (const std::string& line : shuffled) {
      mutated += line;
      mutated += '\n';
    }
    SCOPED_TRACE("splice iteration " + std::to_string(iter));
    ExpectRejectedOrValid(mutated);
  }
}

// ---------------------------------------------------------------------------
// Binary snapshot format (DESIGN.md §17): the same fail-closed contract for
// STHoles::DeserializeBinary, which additionally reports *why* through a
// Status instead of a bare nullptr. Framing (magic/version/size/checksum)
// and payload (geometry, depth discipline, trailing bytes) are both fuzzed.
// ---------------------------------------------------------------------------

std::string TrainedBinarySerialization(size_t buckets, size_t queries) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 1500;
  data_config.noise_tuples = 300;
  GeneratedData g = MakeCross(data_config);
  Executor executor(g.data);
  STHoles h(g.domain, static_cast<double>(g.data.size()), Budget(buckets));
  WorkloadConfig wc;
  wc.num_queries = queries;
  Workload w = MakeWorkload(g.domain, wc);
  for (const Box& q : w) h.Refine(q, executor);
  return h.SerializeBinary();
}

// Binary twin of ExpectRejectedOrValid: error Status or a histogram that
// passes invariants and round-trips byte-stably.
void ExpectBinaryRejectedOrValid(std::string_view input) {
  StatusOr<std::unique_ptr<STHoles>> hist =
      STHoles::DeserializeBinary(input, Budget(50));
  if (!hist.ok()) {
    EXPECT_FALSE(hist.status().message().empty());
    return;
  }
  (*hist)->CheckInvariants();
  EXPECT_TRUE(std::isfinite((*hist)->TotalFrequency()));
  const std::string reserialized = (*hist)->SerializeBinary();
  StatusOr<std::unique_ptr<STHoles>> again =
      STHoles::DeserializeBinary(reserialized, Budget(50));
  EXPECT_TRUE(again.ok());
}

TEST(SerializeFuzzTest, BinaryWrongVersionNamesBothVersions) {
  std::string blob = TrainedBinarySerialization(20, 40);
  ASSERT_GE(blob.size(), 24u);
  // The version field is the little-endian u32 after the 4-byte magic.
  blob[4] = 3;
  blob[5] = blob[6] = blob[7] = 0;
  StatusOr<std::unique_ptr<STHoles>> hist =
      STHoles::DeserializeBinary(blob, Budget(50));
  ASSERT_FALSE(hist.ok());
  const std::string& message = hist.status().message();
  // The diagnostic names the version found AND the version this build
  // reads — the operator-facing half of the evolution policy.
  EXPECT_NE(message.find("version 3"), std::string::npos) << message;
  EXPECT_NE(message.find(std::string("version ") +
                         std::to_string(STHoles::kBinaryFormatVersion)),
            std::string::npos)
      << message;
}

TEST(SerializeFuzzTest, BinaryStructuredCorruptionCorpus) {
  const std::string valid = TrainedBinarySerialization(15, 30);
  ASSERT_GE(valid.size(), 24u);

  std::vector<std::string> corpus = {
      "",
      "S",
      "STH",
      "STHB",                      // Magic only, no header.
      std::string(24, '\0'),       // Zeroed header.
      valid.substr(0, 24),         // Header without payload.
      valid + std::string(1, 0),   // Trailing byte (size mismatch).
      valid + valid,               // Doubled file.
      std::string("STHX") + valid.substr(4),  // Wrong magic.
  };
  // Every header byte flipped, one at a time: magic, version, payload size,
  // checksum — each must fail its own check.
  for (size_t i = 0; i < 24; ++i) {
    std::string mutated = valid;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x5a);
    corpus.push_back(std::move(mutated));
  }
  // Every payload byte flipped in a stride: the checksum must catch all of
  // them (a flip that also fixes FNV-1a would need a second preimage).
  for (size_t i = 24; i < valid.size(); i += 7) {
    std::string mutated = valid;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xff);
    corpus.push_back(std::move(mutated));
  }

  for (size_t i = 0; i < corpus.size(); ++i) {
    SCOPED_TRACE("binary corpus entry " + std::to_string(i));
    StatusOr<std::unique_ptr<STHoles>> hist =
        STHoles::DeserializeBinary(corpus[i], Budget(50));
    EXPECT_FALSE(hist.ok());
  }
  // The unmutated blob still decodes.
  EXPECT_TRUE(STHoles::DeserializeBinary(valid, Budget(50)).ok());
}

TEST(SerializeFuzzTest, BinaryEveryTruncationIsRejected) {
  const std::string blob = TrainedBinarySerialization(25, 60);
  ASSERT_GT(blob.size(), 100u);
  // The header pins the exact payload size, so *every* strict prefix must
  // be rejected (and must not crash) — the torn-file half of §17.
  for (size_t len = 0; len < blob.size(); ++len) {
    StatusOr<std::unique_ptr<STHoles>> hist = STHoles::DeserializeBinary(
        std::string_view(blob.data(), len), Budget(25));
    EXPECT_FALSE(hist.ok()) << "prefix of " << len << " bytes accepted";
  }
  EXPECT_TRUE(STHoles::DeserializeBinary(blob, Budget(25)).ok());
}

TEST(SerializeFuzzTest, BinaryRandomMutationsNeverCrash) {
  const std::string blob = TrainedBinarySerialization(20, 40);
  Rng rng(20260808);
  for (int iter = 0; iter < 400; ++iter) {
    std::string mutated = blob;
    int edits = 1 + static_cast<int>(rng.Uniform(0.0, 4.0));
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      size_t pos = static_cast<size_t>(
          rng.Uniform(0.0, static_cast<double>(mutated.size())));
      pos = std::min(pos, mutated.size() - 1);
      double kind = rng.Uniform(0.0, 3.0);
      char byte = static_cast<char>(rng.Uniform(0.0, 256.0));
      if (kind < 1.0) {
        mutated[pos] = byte;
      } else if (kind < 2.0) {
        mutated.insert(pos, 1, byte);
      } else {
        mutated.erase(pos, 1);
      }
    }
    SCOPED_TRACE("binary mutation iteration " + std::to_string(iter));
    ExpectBinaryRejectedOrValid(mutated);
  }
}

TEST(SerializeFuzzTest, BinaryAcceptedRoundTripIsByteStable) {
  const std::string blob = TrainedBinarySerialization(30, 80);
  StatusOr<std::unique_ptr<STHoles>> first =
      STHoles::DeserializeBinary(blob, Budget(30));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const std::string second_blob = (*first)->SerializeBinary();
  EXPECT_EQ(second_blob, blob);
  StatusOr<std::unique_ptr<STHoles>> second =
      STHoles::DeserializeBinary(second_blob, Budget(30));
  ASSERT_TRUE(second.ok());
  (*second)->CheckInvariants();
}

TEST(SerializeFuzzTest, AcceptedInputsRoundTripStably) {
  // Fixed-point property on the valid side of the boundary: deserialize →
  // serialize → deserialize is stable and bit-exact.
  std::string text = TrainedSerialization(30, 80);
  auto first = STHoles::Deserialize(text, Budget(30));
  ASSERT_NE(first, nullptr);
  std::string second_text = first->Serialize();
  EXPECT_EQ(second_text, text);
  auto second = STHoles::Deserialize(second_text, Budget(30));
  ASSERT_NE(second, nullptr);
  second->CheckInvariants();
}

}  // namespace
}  // namespace sthist

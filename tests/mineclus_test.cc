#include "clustering/mineclus.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/generators.h"

namespace sthist {
namespace {

bool SameDims(const std::vector<size_t>& a, const std::vector<size_t>& b) {
  return a == b;
}

TEST(MineClusTest, RecoversCrossBands) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 5000;
  data_config.noise_tuples = 1000;
  GeneratedData g = MakeCross(data_config);

  MineClusConfig config;
  config.alpha = 0.05;
  config.beta = 0.25;
  config.width_fraction = 0.05;
  std::vector<SubspaceCluster> clusters =
      RunMineClus(g.data, g.domain, config);

  ASSERT_GE(clusters.size(), 2u);
  // The two top clusters must be the two 1-dimensional bands (relevant dim
  // 0 for the vertical band, 1 for the horizontal one).
  std::set<size_t> seen;
  for (size_t i = 0; i < 2; ++i) {
    ASSERT_EQ(clusters[i].relevant_dims.size(), 1u)
        << "band clusters are one-dimensional";
    seen.insert(clusters[i].relevant_dims[0]);
    EXPECT_GT(clusters[i].members.size(), 4000u)
        << "most of a band's 5000 tuples are recovered";
  }
  EXPECT_EQ(seen, (std::set<size_t>{0, 1}));
}

TEST(MineClusTest, ScoresAreSortedDescending) {
  GaussConfig data_config;
  data_config.cluster_tuples = 8000;
  data_config.noise_tuples = 800;
  GeneratedData g = MakeGauss(data_config);
  std::vector<SubspaceCluster> clusters =
      RunMineClus(g.data, g.domain, MineClusConfig{});
  for (size_t i = 1; i < clusters.size(); ++i) {
    EXPECT_GE(clusters[i - 1].score, clusters[i].score);
  }
}

TEST(MineClusTest, ScoreMatchesMuFormula) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 2000;
  data_config.noise_tuples = 200;
  GeneratedData g = MakeCross(data_config);
  MineClusConfig config;
  config.beta = 0.5;
  std::vector<SubspaceCluster> clusters =
      RunMineClus(g.data, g.domain, config);
  for (const SubspaceCluster& c : clusters) {
    double mu = static_cast<double>(c.members.size()) *
                std::pow(1.0 / config.beta,
                         static_cast<double>(c.relevant_dims.size()));
    EXPECT_DOUBLE_EQ(c.score, mu);
  }
}

TEST(MineClusTest, AlphaThresholdIsRespected) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 2000;
  data_config.noise_tuples = 500;
  GeneratedData g = MakeCross(data_config);
  MineClusConfig config;
  config.alpha = 0.10;
  config.merge_similar = false;
  std::vector<SubspaceCluster> clusters =
      RunMineClus(g.data, g.domain, config);
  const double min_size = config.alpha * static_cast<double>(g.data.size());
  for (const SubspaceCluster& c : clusters) {
    EXPECT_GE(static_cast<double>(c.members.size()), min_size);
  }
}

TEST(MineClusTest, MembersAreDisjointAcrossClusters) {
  GaussConfig data_config;
  data_config.cluster_tuples = 6000;
  data_config.noise_tuples = 600;
  GeneratedData g = MakeGauss(data_config);
  MineClusConfig config;
  config.merge_similar = false;
  std::vector<SubspaceCluster> clusters =
      RunMineClus(g.data, g.domain, config);
  std::set<size_t> seen;
  for (const SubspaceCluster& c : clusters) {
    for (size_t row : c.members) {
      EXPECT_TRUE(seen.insert(row).second)
          << "greedy extraction removes members from the pool";
    }
  }
}

TEST(MineClusTest, CoreBoxBoundsMembers) {
  GaussConfig data_config;
  data_config.cluster_tuples = 4000;
  data_config.noise_tuples = 400;
  GeneratedData g = MakeGauss(data_config);
  std::vector<SubspaceCluster> clusters =
      RunMineClus(g.data, g.domain, MineClusConfig{});
  ASSERT_FALSE(clusters.empty());
  for (const SubspaceCluster& c : clusters) {
    for (size_t row : c.members) {
      EXPECT_TRUE(c.core_box.ContainsPoint(g.data.row(row)));
    }
  }
}

TEST(MineClusTest, RecoversPlantedSubspaceDimsOnGauss) {
  GaussConfig data_config;
  data_config.cluster_tuples = 20000;
  data_config.noise_tuples = 2000;
  data_config.num_clusters = 5;
  GeneratedData g = MakeGauss(data_config);

  MineClusConfig config;
  config.alpha = 0.02;
  config.beta = 0.25;
  config.width_fraction = 0.06;
  std::vector<SubspaceCluster> clusters =
      RunMineClus(g.data, g.domain, config);

  // At least half of the planted clusters should be recovered with exactly
  // their relevant dimensions.
  size_t recovered = 0;
  for (const PlantedCluster& truth : g.truth) {
    for (const SubspaceCluster& found : clusters) {
      if (SameDims(found.relevant_dims, truth.relevant_dims) &&
          found.core_box.Intersects(truth.extent)) {
        ++recovered;
        break;
      }
    }
  }
  EXPECT_GE(recovered, g.truth.size() / 2)
      << "found " << recovered << " of " << g.truth.size();
}

TEST(MineClusTest, MaxClustersCapIsHonored) {
  GaussConfig data_config;
  data_config.cluster_tuples = 6000;
  data_config.noise_tuples = 600;
  GeneratedData g = MakeGauss(data_config);
  MineClusConfig config;
  config.max_clusters = 3;
  config.merge_similar = false;
  std::vector<SubspaceCluster> clusters =
      RunMineClus(g.data, g.domain, config);
  EXPECT_LE(clusters.size(), 3u);
}

TEST(MineClusTest, DeterministicForSeed) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 1500;
  data_config.noise_tuples = 300;
  GeneratedData g = MakeCross(data_config);
  std::vector<SubspaceCluster> a =
      RunMineClus(g.data, g.domain, MineClusConfig{});
  std::vector<SubspaceCluster> b =
      RunMineClus(g.data, g.domain, MineClusConfig{});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].relevant_dims, b[i].relevant_dims);
    EXPECT_EQ(a[i].members, b[i].members);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

}  // namespace
}  // namespace sthist

// FlatBoxIndex battery (DESIGN.md §15):
//  - correctness: probes match a brute-force scan across dimensionalities,
//    seeds, entry counts, degenerate boxes, and both overlap modes, for
//    bulk-built, insert-built, and mixed indexes;
//  - kernel identity: the vectorized and forced-scalar kernels report the
//    same hits in the same order, so the dispatch choice is unobservable;
//  - sentinel safety: padded slots are never reported, even to an
//    all-infinite closed-mode query that their sentinel bounds would match;
//  - maintenance: the overflow tail compacts on schedule without changing
//    probe results;
//  - allocation: the steady-state probe path — both the raw index and a
//    full STHoles::Estimate through BucketTreeIndex — performs zero heap
//    allocations, counted via a global operator new hook.

#include "index/flat_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <tuple>
#include <vector>

#include "core/box.h"
#include "core/rng.h"
#include "core/simd.h"
#include "data/generators.h"
#include "histogram/stholes.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace {

// Global allocation counter fed by the replaced operator new (below); used
// to prove the warm probe path allocates nothing.
std::atomic<uint64_t> g_allocations{0};

}  // namespace

// The replacement pair is malloc/free-consistent; GCC's
// -Wmismatched-new-delete can't see that across the replaced functions and
// warns on every delete in the binary.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace sthist {
namespace {

// Restores the dispatch state on scope exit so a failing test cannot leak a
// forced-scalar kernel into the rest of the binary.
struct ScalarGuard {
  explicit ScalarGuard(bool force) { simd::ForceScalarForTest(force); }
  ~ScalarGuard() { simd::ForceScalarForTest(false); }
};

// Reference predicate for BoxOverlap::kClosed (same as rtree_test).
bool ClosedOverlap(const Box& a, const Box& b) {
  for (size_t d = 0; d < a.dim(); ++d) {
    if (a.lo(d) > b.hi(d) || b.lo(d) > a.hi(d)) return false;
  }
  return true;
}

// Random box inside [0, 110)^dim; with probability `degenerate_p` each
// dimension independently collapses to zero extent.
Box RandomBox(size_t dim, Rng* rng, double degenerate_p = 0.0) {
  Box box = Box::Cube(dim, 0.0, 1.0);
  for (size_t d = 0; d < dim; ++d) {
    const double lo = rng->Uniform(0.0, 80.0);
    const double extent =
        rng->Bernoulli(degenerate_p) ? 0.0 : rng->Uniform(0.0, 30.0);
    box.set_lo(d, lo);
    box.set_hi(d, lo + extent);
  }
  return box;
}

std::vector<uint64_t> BruteProbe(
    const std::vector<FlatBoxIndex::Entry>& entries, const Box& query,
    BoxOverlap mode) {
  std::vector<uint64_t> out;
  for (const FlatBoxIndex::Entry& e : entries) {
    const bool hit = mode == BoxOverlap::kOpenInterior
                         ? e.box.Intersects(query)
                         : ClosedOverlap(e.box, query);
    if (hit) out.push_back(e.id);
  }
  return out;
}

std::vector<uint64_t> Sorted(std::vector<uint64_t> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

// Probes the index with 200 random queries and checks the hit set against
// the brute-force reference in both modes — and that the forced-scalar
// kernel reproduces the dispatched kernel's output exactly (same hits, same
// order), which makes the SIMD level unobservable.
void ExpectProbesMatchBruteForce(
    const FlatBoxIndex& index, const std::vector<FlatBoxIndex::Entry>& entries,
    size_t dim, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < 200; ++i) {
    const Box query = RandomBox(dim, &rng, /*degenerate_p=*/0.1);
    for (BoxOverlap mode : {BoxOverlap::kOpenInterior, BoxOverlap::kClosed}) {
      std::vector<uint64_t> got;
      index.Probe(query, mode, &got);
      std::vector<uint64_t> scalar;
      {
        ScalarGuard guard(true);
        index.Probe(query, mode, &scalar);
      }
      EXPECT_EQ(got, scalar)
          << "kernel divergence, dim=" << dim << " query=" << query.ToString();
      EXPECT_EQ(Sorted(std::move(got)), Sorted(BruteProbe(entries, query, mode)))
          << "dim=" << dim << " query=" << query.ToString()
          << " mode=" << (mode == BoxOverlap::kClosed ? "closed" : "open");
    }
  }
}

TEST(FlatBoxIndexTest, EmptyIndexProbesNothing) {
  FlatBoxIndex index;
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.size(), 0u);
  std::vector<uint64_t> out;
  const FlatBoxIndex::ProbeStats stats =
      index.Probe(Box::Cube(3, 0.0, 100.0), BoxOverlap::kOpenInterior, &out);
  index.Probe(Box::Cube(3, 0.0, 100.0), BoxOverlap::kClosed, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.node_visits, 0u);
  EXPECT_EQ(stats.entry_blocks, 0u);
}

TEST(FlatBoxIndexTest, ProbeAppendsWithoutClearing) {
  FlatBoxIndex index;
  index.Insert(Box::Cube(2, 0.0, 10.0), 7);
  std::vector<uint64_t> out = {42};
  index.Probe(Box::Cube(2, 1.0, 2.0), BoxOverlap::kOpenInterior, &out);
  EXPECT_EQ(out, (std::vector<uint64_t>{42, 7}));
}

class FlatBoxIndexRandomTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t, size_t>> {};

TEST_P(FlatBoxIndexRandomTest, BulkMatchesBruteForce) {
  const auto [dim, seed, count] = GetParam();
  Rng rng(seed);
  std::vector<FlatBoxIndex::Entry> entries;
  for (size_t i = 0; i < count; ++i) {
    entries.push_back({RandomBox(dim, &rng, /*degenerate_p=*/0.05), i});
  }
  FlatBoxIndex index;
  index.Bulk(entries);
  EXPECT_EQ(index.size(), entries.size());
  EXPECT_EQ(index.overflow_size(), 0u);
  ExpectProbesMatchBruteForce(index, entries, dim, seed ^ 0x9e3779b9);
}

TEST_P(FlatBoxIndexRandomTest, InsertMatchesBruteForce) {
  const auto [dim, seed, count] = GetParam();
  Rng rng(seed);
  std::vector<FlatBoxIndex::Entry> entries;
  FlatBoxIndex index;
  for (size_t i = 0; i < count; ++i) {
    entries.push_back({RandomBox(dim, &rng, /*degenerate_p=*/0.05), i});
    index.Insert(entries.back().box, entries.back().id);
  }
  EXPECT_EQ(index.size(), entries.size());
  ExpectProbesMatchBruteForce(index, entries, dim, seed ^ 0x51ed270b);
}

TEST_P(FlatBoxIndexRandomTest, BulkThenInsertMatchesBruteForce) {
  const auto [dim, seed, count] = GetParam();
  Rng rng(seed);
  std::vector<FlatBoxIndex::Entry> entries;
  for (size_t i = 0; i < count; ++i) {
    entries.push_back({RandomBox(dim, &rng, /*degenerate_p=*/0.05), i});
  }
  FlatBoxIndex index;
  const size_t half = count / 2;
  index.Bulk({entries.begin(), entries.begin() + half});
  for (size_t i = half; i < count; ++i) {
    index.Insert(entries[i].box, entries[i].id);
  }
  EXPECT_EQ(index.size(), entries.size());
  ExpectProbesMatchBruteForce(index, entries, dim, seed ^ 0xc2b2ae35);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FlatBoxIndexRandomTest,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 3, 5, 8),
                       ::testing::Values<uint64_t>(3, 17),
                       ::testing::Values<size_t>(1, 7, 64, 400)),
    [](const auto& info) {
      return "dim" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param)) + "_n" +
             std::to_string(std::get<2>(info.param));
    });

TEST(FlatBoxIndexTest, DegenerateEntryProbeModes) {
  FlatBoxIndex index;
  Box inside = Box::Cube(2, 5.0, 5.0);      // Zero extent, strictly interior.
  Box boundary = Box::Cube(2, 10.0, 10.0);  // Zero extent, on the boundary.
  index.Insert(inside, 1);
  index.Insert(boundary, 2);
  Box covering = Box::Cube(2, 0.0, 10.0);
  std::vector<uint64_t> open, closed;
  index.Probe(covering, BoxOverlap::kOpenInterior, &open);
  index.Probe(covering, BoxOverlap::kClosed, &closed);
  EXPECT_EQ(open, std::vector<uint64_t>{1});
  EXPECT_EQ(Sorted(std::move(closed)), (std::vector<uint64_t>{1, 2}));
}

TEST(FlatBoxIndexTest, TouchingBoxesVisibleOnlyToClosedProbes) {
  FlatBoxIndex index;
  index.Insert(Box::Cube(2, 0.0, 5.0), 1);
  Box touching = Box::Cube(2, 5.0, 10.0);  // Shares only the corner at (5,5).
  std::vector<uint64_t> open, closed;
  index.Probe(touching, BoxOverlap::kOpenInterior, &open);
  index.Probe(touching, BoxOverlap::kClosed, &closed);
  EXPECT_TRUE(open.empty());
  EXPECT_EQ(closed, std::vector<uint64_t>{1});
}

TEST(FlatBoxIndexTest, ClearResetsToEmpty) {
  Rng rng(5);
  FlatBoxIndex index;
  for (uint64_t i = 0; i < 50; ++i) index.Insert(RandomBox(3, &rng), i);
  EXPECT_EQ(index.size(), 50u);
  index.Clear();
  EXPECT_TRUE(index.empty());
  std::vector<uint64_t> out;
  index.Probe(Box::Cube(3, 0.0, 200.0), BoxOverlap::kClosed, &out);
  EXPECT_TRUE(out.empty());
  index.Insert(Box::Cube(3, 0.0, 1.0), 9);
  index.Probe(Box::Cube(3, 0.0, 200.0), BoxOverlap::kClosed, &out);
  EXPECT_EQ(out, std::vector<uint64_t>{9});
}

TEST(FlatBoxIndexTest, DuplicateBoxesAllReported) {
  FlatBoxIndex index;
  Box box = Box::Cube(2, 1.0, 2.0);
  for (uint64_t i = 0; i < 20; ++i) index.Insert(box, i);
  std::vector<uint64_t> out;
  index.Probe(box, BoxOverlap::kOpenInterior, &out);
  std::vector<uint64_t> want(20);
  for (uint64_t i = 0; i < 20; ++i) want[i] = i;
  EXPECT_EQ(Sorted(std::move(out)), want);
}

// The sentinel bounds of padded slots (lo = +inf, hi = -inf) satisfy the
// closed-overlap compare against a query spanning [-inf, +inf], so this is
// the one query shape that reaches the explicit pad filter. No pad id may
// ever surface.
TEST(FlatBoxIndexTest, InfiniteQueryNeverReportsPadSlots) {
  Rng rng(11);
  std::vector<FlatBoxIndex::Entry> entries;
  // 21 entries: leaves pad to a block multiple, so pads certainly exist.
  for (uint64_t i = 0; i < 21; ++i) {
    entries.push_back({RandomBox(3, &rng), i});
  }
  FlatBoxIndex index;
  index.Bulk(entries);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  Box everything = Box::Cube(3, -kInf, kInf);
  for (BoxOverlap mode : {BoxOverlap::kOpenInterior, BoxOverlap::kClosed}) {
    std::vector<uint64_t> out;
    index.Probe(everything, mode, &out);
    std::vector<uint64_t> want(21);
    for (uint64_t i = 0; i < 21; ++i) want[i] = i;
    EXPECT_EQ(Sorted(std::move(out)), want)
        << (mode == BoxOverlap::kClosed ? "closed" : "open");
  }
}

// Inserts eventually fold the overflow tail back into the tree; results must
// be identical before and after the fold.
TEST(FlatBoxIndexTest, OverflowTailCompactsOnSchedule) {
  Rng rng(23);
  std::vector<FlatBoxIndex::Entry> entries;
  FlatBoxIndex index;
  for (uint64_t i = 0; i < 200; ++i) {
    entries.push_back({RandomBox(2, &rng, /*degenerate_p=*/0.05), i});
    index.Insert(entries.back().box, entries.back().id);
  }
  // The tail budget is max(32, size/16), so 200 straight inserts must have
  // folded at least once, and the residual tail must be within budget.
  EXPECT_GE(index.compactions(), 1u);
  EXPECT_LE(index.overflow_size(), std::max<size_t>(32, index.size() / 16));
  ExpectProbesMatchBruteForce(index, entries, 2, 29);
}

TEST(FlatBoxIndexTest, ProbeStatsCountWork) {
  Rng rng(31);
  std::vector<FlatBoxIndex::Entry> entries;
  for (uint64_t i = 0; i < 500; ++i) {
    entries.push_back({RandomBox(2, &rng), i});
  }
  FlatBoxIndex index;
  index.Bulk(entries);
  std::vector<uint64_t> out;
  // A probe disjoint from every entry prunes at the root: one node visit,
  // zero entry blocks.
  Box far = Box::Cube(2, 500.0, 600.0);
  FlatBoxIndex::ProbeStats miss =
      index.Probe(far, BoxOverlap::kOpenInterior, &out);
  EXPECT_EQ(miss.node_visits, 1u);
  EXPECT_EQ(miss.entry_blocks, 0u);
  EXPECT_TRUE(out.empty());
  // A probe covering everything visits every node and runs every block.
  Box everything = Box::Cube(2, -10.0, 200.0);
  FlatBoxIndex::ProbeStats hit =
      index.Probe(everything, BoxOverlap::kOpenInterior, &out);
  EXPECT_GT(hit.node_visits, 1u);
  EXPECT_GT(hit.entry_blocks, 0u);
  EXPECT_EQ(out.size(), 500u);
}

// ---------------------------------------------------------------------------
// Allocation discipline
// ---------------------------------------------------------------------------

// The raw probe is allocation-free once the output vector's capacity is
// warm: fixed traversal stack, fixed per-leaf hit buffer, no temporaries.
TEST(FlatIndexAllocationTest, WarmProbeDoesNotAllocate) {
  Rng rng(37);
  std::vector<FlatBoxIndex::Entry> entries;
  FlatBoxIndex index;
  for (uint64_t i = 0; i < 400; ++i) {
    entries.push_back({RandomBox(4, &rng), i});
    index.Insert(entries.back().box, entries.back().id);
  }
  std::vector<Box> queries;
  for (size_t i = 0; i < 50; ++i) queries.push_back(RandomBox(4, &rng));

  std::vector<uint64_t> out;
  auto run = [&] {
    for (const Box& q : queries) {
      out.clear();
      index.Probe(q, BoxOverlap::kOpenInterior, &out);
      out.clear();
      index.Probe(q, BoxOverlap::kClosed, &out);
    }
  };
  run();  // Warm `out` to its steady-state capacity.

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  run();
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u);
}

// End to end: a warm STHoles::Estimate — probe through BucketTreeIndex,
// indexed recursion, metrics — performs zero heap allocations per query.
TEST(FlatIndexAllocationTest, WarmSTHolesEstimateDoesNotAllocate) {
  CrossConfig data_config;
  data_config.dim = 3;
  data_config.tuples_per_cluster = 600;
  data_config.noise_tuples = 300;
  data_config.seed = 41;
  GeneratedData g = MakeCross(data_config);
  Executor executor(g.data);

  STHolesConfig config;
  config.max_buckets = 60;
  STHoles h(g.domain, static_cast<double>(g.data.size()), config);

  WorkloadConfig wc;
  wc.num_queries = 60;
  wc.seed = 43;
  for (const Box& q : MakeWorkload(g.domain, wc)) h.Refine(q, executor);

  wc.num_queries = 30;
  wc.seed = 47;
  Workload probes = MakeWorkload(g.domain, wc);

  // Warm-up passes: trigger the lazy index build (it waits for repeated
  // estimates on a stable tree) and grow the thread-local scratch buffers
  // to steady-state capacity.
  for (int pass = 0; pass < 3; ++pass) {
    for (const Box& q : probes) (void)h.Estimate(q);
  }

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  double sink = 0.0;
  for (const Box& q : probes) sink += h.Estimate(q);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u)
      << "steady-state Estimate allocated on the hot path";
  EXPECT_GT(sink, 0.0);
}

}  // namespace
}  // namespace sthist

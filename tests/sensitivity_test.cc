// Empirical verification of the paper's sensitivity analysis (§3.1, §4.2.1):
// an uninitialized histogram is delta-sensitive to the order of its learning
// queries (Definition 1), while a histogram initialized with the clusters'
// bounding buckets is insensitive (Lemma 4: once the cluster bucket is
// drilled, no workload permutation can spoil it).

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "histogram/stholes.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

// A single dense uniform rectangular cluster, nothing else (the Lemma 4
// setting: outside density 0).
struct SingleClusterSetup {
  Dataset data{2};
  Box domain = Box::Cube(2, 0, 100);
  Box cluster = Box({20.0, 30.0}, {60.0, 70.0});
};

SingleClusterSetup MakeSingleCluster(uint64_t seed) {
  SingleClusterSetup setup;
  Rng rng(seed);
  Point p(2);
  for (int i = 0; i < 5000; ++i) {
    p[0] = rng.Uniform(setup.cluster.lo(0), setup.cluster.hi(0));
    p[1] = rng.Uniform(setup.cluster.lo(1), setup.cluster.hi(1));
    setup.data.Append(p);
  }
  return setup;
}

TEST(SensitivityTest, InitializedHistogramIsInsensitiveToPermutations) {
  SingleClusterSetup setup = MakeSingleCluster(1);
  Executor executor(setup.data);

  WorkloadConfig wc;
  wc.num_queries = 200;
  wc.volume_fraction = 0.01;
  Workload base = MakeWorkload(setup.domain, wc);

  for (uint64_t perm_seed : {11u, 12u, 13u}) {
    Workload permuted = Permuted(base, perm_seed);

    STHolesConfig config;
    config.max_buckets = 20;
    STHoles hist(setup.domain, static_cast<double>(setup.data.size()),
                 config);
    hist.Refine(setup.cluster, executor);  // Initialization: b0 = C.
    Train(&hist, permuted, executor);

    // Lemma 4: epsilon(H0|W) stays ~0 for any permutation. Tuples are drawn
    // uniformly at random, so allow the small sampling deviation the paper
    // notes for randomly generated data.
    double err = MeanAbsoluteError(hist, base, executor);
    double cluster_mass = executor.Count(setup.cluster);
    EXPECT_LT(err, 0.02 * cluster_mass)
        << "permutation seed " << perm_seed;
  }
}

TEST(SensitivityTest, ClusterBucketSurvivesArbitraryTraining) {
  SingleClusterSetup setup = MakeSingleCluster(2);
  Executor executor(setup.data);

  STHolesConfig config;
  config.max_buckets = 10;
  STHoles hist(setup.domain, static_cast<double>(setup.data.size()), config);
  hist.Refine(setup.cluster, executor);

  WorkloadConfig wc;
  wc.num_queries = 300;
  wc.volume_fraction = 0.02;
  wc.seed = 3;
  Workload w = MakeWorkload(setup.domain, wc);
  Train(&hist, w, executor);

  // The cluster box still estimates (nearly) exactly: the bucket b0 is
  // stable — merges always find cheaper candidates.
  double real = executor.Count(setup.cluster);
  EXPECT_NEAR(hist.Estimate(setup.cluster), real, 0.02 * real);
}

TEST(SensitivityTest, UninitializedHistogramIsOrderSensitive) {
  // On the Cross dataset with a tight budget, different permutations of the
  // same workload land in different local optima (delta-sensitivity).
  CrossConfig data_config;
  data_config.tuples_per_cluster = 5000;
  data_config.noise_tuples = 1000;
  GeneratedData g = MakeCross(data_config);
  Executor executor(g.data);

  WorkloadConfig wc;
  wc.num_queries = 300;
  wc.volume_fraction = 0.01;
  Workload train = MakeWorkload(g.domain, wc);
  wc.seed = 77;
  Workload eval = MakeWorkload(g.domain, wc);

  auto final_error = [&](const Workload& order) {
    STHolesConfig config;
    config.max_buckets = 10;
    STHoles hist(g.domain, static_cast<double>(g.data.size()), config);
    Train(&hist, order, executor);
    return MeanAbsoluteError(hist, eval, executor);
  };

  double base_err = final_error(train);
  double max_delta = 0.0;
  for (uint64_t perm_seed : {21u, 22u, 23u, 24u}) {
    double err = final_error(Permuted(train, perm_seed));
    max_delta = std::max(max_delta, std::abs(err - base_err));
  }
  EXPECT_GT(max_delta, 0.03 * base_err)
      << "at least one permutation shifts the error noticeably";
}

TEST(SensitivityTest, InitializationDominatesAcrossPermutations) {
  // The headline robustness claim: under every permutation of the training
  // workload, the initialized histogram beats the uninitialized one.
  CrossConfig data_config;
  data_config.tuples_per_cluster = 5000;
  data_config.noise_tuples = 1000;
  GeneratedData g = MakeCross(data_config);
  Executor executor(g.data);

  WorkloadConfig wc;
  wc.num_queries = 300;
  wc.volume_fraction = 0.01;
  Workload train = MakeWorkload(g.domain, wc);
  wc.seed = 77;
  Workload eval = MakeWorkload(g.domain, wc);

  auto final_error = [&](const Workload& order, bool initialize) {
    STHolesConfig config;
    config.max_buckets = 10;
    STHoles hist(g.domain, static_cast<double>(g.data.size()), config);
    if (initialize) {
      for (const PlantedCluster& c : g.truth) {
        hist.Refine(c.extent, executor);
      }
    }
    Train(&hist, order, executor);
    return MeanAbsoluteError(hist, eval, executor);
  };

  auto min_max = [&](bool initialize) {
    double lo = 1e300, hi = -1e300;
    for (uint64_t perm_seed : {31u, 32u, 33u, 34u}) {
      double err = final_error(Permuted(train, perm_seed), initialize);
      lo = std::min(lo, err);
      hi = std::max(hi, err);
    }
    return std::make_pair(lo, hi);
  };

  auto [init_lo, init_hi] = min_max(true);
  auto [uninit_lo, uninit_hi] = min_max(false);
  // Robustness as dominance: the *worst* permutation of the initialized
  // histogram still beats the *best* permutation of the uninitialized one
  // by a wide margin.
  EXPECT_LT(init_hi, 0.5 * uninit_lo);
}

}  // namespace
}  // namespace sthist

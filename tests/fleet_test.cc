// Fleet battery for the sharded multi-tenant serving layer
// (serve/service_fleet.h). The determinism centerpiece: per-shard replay
// through a K-refiner pool must be bitwise-identical (std::bit_cast) to a
// 1-refiner pool, to a standalone HistogramService fed the same stream, and
// to a serial single-threaded replay. Around it: an 8-reader × 16-tenant
// stress (the TSan structural race detector for the pool), tenant add/remove
// under live traffic, shed isolation, and a scheduler unit proving the
// work-claiming rule never runs one shard on two refiners.

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "data/generators.h"
#include "histogram/stholes.h"
#include "serve/histogram_service.h"
#include "serve/service_fleet.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

/// One shared dataset + executor: many tenants serve histograms over the
/// same underlying data (distinct attribute sets of one table in paper
/// terms), each refined by its own feedback stream.
struct DataVariant {
  explicit DataVariant(GeneratedData generated) : g(std::move(generated)) {}
  GeneratedData g;
  std::unique_ptr<Executor> executor;
};

// Heap-allocated so the executor's reference into the dataset survives the
// variants vector growing (a by-value DataVariant would move underneath it).
std::unique_ptr<DataVariant> MakeVariant(size_t tuples_per_cluster,
                                         uint64_t seed) {
  CrossConfig config;
  config.tuples_per_cluster = tuples_per_cluster;
  config.noise_tuples = tuples_per_cluster / 5;
  config.seed = seed;
  auto v = std::make_unique<DataVariant>(MakeCross(config));
  v->executor = std::make_unique<Executor>(v->g.data);
  return v;
}

/// Test fixture state shared by the differential and stress tests: two data
/// variants, per-tenant feedback streams (seed-derived, FIFO), and one probe
/// workload per variant.
struct FleetSetup {
  std::vector<std::unique_ptr<DataVariant>> variants;
  std::vector<std::string> keys;
  std::vector<Workload> feedback;  // keys[i] receives feedback[i] in order.
  std::vector<Workload> probes;    // Indexed by variant.

  const DataVariant& variant_of(size_t tenant) const {
    return *variants[tenant % variants.size()];
  }
  const Workload& probes_of(size_t tenant) const {
    return probes[tenant % variants.size()];
  }
};

FleetSetup MakeFleetSetup(size_t tenants, size_t feedback_per_tenant,
                          size_t probe_queries) {
  FleetSetup setup;
  setup.variants.push_back(MakeVariant(600, 1));
  setup.variants.push_back(MakeVariant(400, 2));
  for (size_t t = 0; t < tenants; ++t) {
    setup.keys.push_back("tenant_" + std::to_string(t));
    WorkloadConfig wc;
    wc.num_queries = feedback_per_tenant;
    wc.volume_fraction = 0.01;
    wc.seed = DeriveSeed(500, t);
    setup.feedback.push_back(
        MakeWorkload(setup.variant_of(t).g.domain, wc));
  }
  for (size_t v = 0; v < setup.variants.size(); ++v) {
    WorkloadConfig wc;
    wc.num_queries = probe_queries;
    wc.volume_fraction = 0.01;
    wc.seed = DeriveSeed(900, v);
    setup.probes.push_back(MakeWorkload(setup.variants[v]->g.domain, wc));
  }
  return setup;
}

std::unique_ptr<STHoles> MakeTenantHistogram(const DataVariant& v,
                                             size_t buckets) {
  STHolesConfig config;
  config.max_buckets = buckets;
  return std::make_unique<STHoles>(v.g.domain,
                                   static_cast<double>(v.g.data.size()),
                                   config);
}

/// Serial ground truth for one tenant: refine a fresh histogram with the
/// stream on the calling thread, then evaluate the probes.
std::vector<double> SerialReplayEstimates(const FleetSetup& setup,
                                          size_t tenant, size_t buckets,
                                          const std::vector<Box>& stream) {
  const DataVariant& v = setup.variant_of(tenant);
  std::unique_ptr<STHoles> replay = MakeTenantHistogram(v, buckets);
  for (const Box& q : stream) replay->Refine(q, *v.executor);
  std::vector<double> out;
  for (const Box& probe : setup.probes_of(tenant)) {
    out.push_back(replay->EstimateLinear(probe));
  }
  return out;
}

TEST(FleetTest, TenantLifecycleStatusContract) {
  FleetSetup setup = MakeFleetSetup(1, 4, 4);
  const DataVariant& v = *setup.variants[0];
  ServiceFleet fleet;

  EXPECT_EQ(fleet.AddTenant("", MakeTenantHistogram(v, 10), *v.executor)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet.AddTenant("a", nullptr, *v.executor).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(
      fleet.AddTenant("a", MakeTenantHistogram(v, 10), *v.executor).ok());
  EXPECT_EQ(fleet.AddTenant("a", MakeTenantHistogram(v, 10), *v.executor)
                .code(),
            StatusCode::kInvalidArgument)
      << "duplicate key";
  EXPECT_TRUE(fleet.HasTenant("a"));
  EXPECT_FALSE(fleet.HasTenant("b"));
  EXPECT_EQ(fleet.Estimate("b", setup.probes[0][0]).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(fleet.SubmitFeedback("b", setup.feedback[0][0]).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(fleet.RemoveTenant("b").code(), StatusCode::kNotFound);
  EXPECT_TRUE(fleet.RemoveTenant("a").ok());
  EXPECT_FALSE(fleet.HasTenant("a"));
  // A removed key is free for re-registration.
  EXPECT_TRUE(
      fleet.AddTenant("a", MakeTenantHistogram(v, 10), *v.executor).ok());

  fleet.Stop();
  EXPECT_EQ(fleet.AddTenant("c", MakeTenantHistogram(v, 10), *v.executor)
                .code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(*fleet.SubmitFeedback("a", setup.feedback[0][0]),
            FleetFeedbackOutcome::kStopped);
  // Reads keep working against the final snapshots.
  StatusOr<double> est = fleet.Estimate("a", setup.probes[0][0]);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(std::isfinite(*est));
  EXPECT_TRUE(fleet.Drain().ok()) << "post-stop drain must not hang";
}

TEST(FleetTest, TenantIdIsSeedDeterministic) {
  FleetConfig a7;
  a7.seed = 7;
  FleetConfig b7;
  b7.seed = 7;
  FleetConfig c9;
  c9.seed = 9;
  ServiceFleet fleet_a(a7), fleet_b(b7), fleet_c(c9);
  EXPECT_EQ(fleet_a.TenantId("orders"), fleet_b.TenantId("orders"))
      << "same seed, same key: stable identity";
  EXPECT_NE(fleet_a.TenantId("orders"), fleet_a.TenantId("lineitem"));
  EXPECT_NE(fleet_a.TenantId("orders"), fleet_c.TenantId("orders"))
      << "identity must depend on the fleet seed";
}

// The determinism centerpiece: the same per-tenant FIFO streams produce
// bitwise-identical final snapshots whether the fleet runs 1 refiner or 4,
// and whether the tenant is a fleet shard or a standalone HistogramService.
TEST(FleetTest, PerShardReplayBitwiseAcrossRefinerCountsAndVsStandalone) {
  constexpr size_t kTenants = 16;
  constexpr size_t kBuckets = 24;
  constexpr size_t kFeedback = 40;
  FleetSetup setup = MakeFleetSetup(kTenants, kFeedback, 20);

  auto run_fleet = [&](size_t refiners) {
    FleetConfig config;
    config.refiners = refiners;
    config.queue_capacity = 4096;
    config.publish_batch = 8;
    config.seed = 7;
    ServiceFleet fleet(config);
    for (size_t t = 0; t < kTenants; ++t) {
      EXPECT_TRUE(fleet
                      .AddTenant(setup.keys[t],
                                 MakeTenantHistogram(setup.variant_of(t),
                                                     kBuckets),
                                 *setup.variant_of(t).executor)
                      .ok());
    }
    // Tenant-major interleave: every shard sees its own stream in FIFO
    // order while all shards contend for the shared pool.
    for (size_t i = 0; i < kFeedback; ++i) {
      for (size_t t = 0; t < kTenants; ++t) {
        StatusOr<FleetFeedbackOutcome> outcome =
            fleet.SubmitFeedback(setup.keys[t], setup.feedback[t][i]);
        EXPECT_TRUE(outcome.ok() &&
                    *outcome == FleetFeedbackOutcome::kAccepted);
      }
    }
    EXPECT_TRUE(fleet.Drain().ok());
    fleet.Stop();

    FleetStats stats = fleet.stats();
    EXPECT_EQ(stats.feedback_accepted, kTenants * kFeedback);
    EXPECT_EQ(stats.feedback_applied, kTenants * kFeedback);
    EXPECT_EQ(stats.queue_depth, 0u);

    std::vector<std::vector<double>> estimates(kTenants);
    for (size_t t = 0; t < kTenants; ++t) {
      std::shared_ptr<const Histogram> snap = fleet.Snapshot(setup.keys[t]);
      EXPECT_TRUE(snap != nullptr);
      if (snap == nullptr) continue;
      for (const Box& probe : setup.probes_of(t)) {
        const double linear = snap->EstimateLinear(probe);
        EXPECT_TRUE(BitEqual(snap->Estimate(probe), linear))
            << "indexed vs linear diverged on the drained snapshot";
        estimates[t].push_back(linear);
      }
    }
    return estimates;
  };

  const std::vector<std::vector<double>> pool1 = run_fleet(1);
  const std::vector<std::vector<double>> pool4 = run_fleet(4);

  for (size_t t = 0; t < kTenants; ++t) {
    // Ground truth 1: serial replay on this thread.
    const std::vector<double> serial = SerialReplayEstimates(
        setup, t, kBuckets,
        {setup.feedback[t].begin(), setup.feedback[t].end()});
    // Ground truth 2: a standalone single-histogram service.
    HistogramService standalone(
        MakeTenantHistogram(setup.variant_of(t), kBuckets),
        *setup.variant_of(t).executor);
    for (const Box& q : setup.feedback[t]) {
      ASSERT_EQ(standalone.SubmitFeedback(q), FeedbackOutcome::kAccepted);
    }
    standalone.Stop();
    std::shared_ptr<const Histogram> standalone_snap = standalone.snapshot();

    const Workload& probes = setup.probes_of(t);
    for (size_t p = 0; p < probes.size(); ++p) {
      EXPECT_TRUE(BitEqual(pool1[t][p], serial[p]))
          << "1-refiner fleet diverged from serial replay, tenant " << t;
      EXPECT_TRUE(BitEqual(pool4[t][p], serial[p]))
          << "4-refiner fleet diverged from serial replay, tenant " << t;
      EXPECT_TRUE(
          BitEqual(standalone_snap->EstimateLinear(probes[p]), serial[p]))
          << "standalone service diverged from serial replay, tenant " << t;
    }
  }
}

// 8 readers × 16 tenants against a live 4-refiner pool: every pinned shard
// snapshot must be internally consistent (indexed == linear, bit for bit)
// and the drained end state must equal the serial replay per shard.
TEST(FleetTest, ConcurrentReadersSeeConsistentShardSnapshots) {
  constexpr size_t kTenants = 16;
  constexpr size_t kReaders = 8;
  constexpr size_t kReadsPerReader = 1200;
  constexpr size_t kBuckets = 24;
  constexpr size_t kFeedback = 60;
  FleetSetup setup = MakeFleetSetup(kTenants, kFeedback, 20);

  FleetConfig config;
  config.refiners = 4;
  config.queue_capacity = 4096;
  config.publish_batch = 8;
  ServiceFleet fleet(config);
  for (size_t t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(fleet
                    .AddTenant(setup.keys[t],
                               MakeTenantHistogram(setup.variant_of(t),
                                                   kBuckets),
                               *setup.variant_of(t).executor)
                    .ok());
  }

  std::atomic<bool> start{false};
  std::atomic<size_t> inconsistent{0};
  std::atomic<size_t> nonfinite{0};
  std::atomic<size_t> missing{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!start.load()) std::this_thread::yield();
      for (size_t i = 0; i < kReadsPerReader; ++i) {
        const size_t t = (r + i) % kTenants;
        const Workload& probes = setup.probes_of(t);
        const Box& q = probes[(r + i) % probes.size()];
        std::shared_ptr<const Histogram> snap =
            fleet.Snapshot(setup.keys[t]);
        if (snap == nullptr) {
          missing.fetch_add(1);
          continue;
        }
        const double indexed = snap->Estimate(q);
        const double linear = snap->EstimateLinear(q);
        if (!std::isfinite(indexed) || !std::isfinite(linear)) {
          nonfinite.fetch_add(1);
        }
        if (!BitEqual(indexed, linear)) inconsistent.fetch_add(1);
      }
    });
  }

  start.store(true);
  // Single producer per shard: the accepted sequence is the submission
  // order, so the end state is replayable.
  for (size_t i = 0; i < kFeedback; ++i) {
    for (size_t t = 0; t < kTenants; ++t) {
      StatusOr<FleetFeedbackOutcome> outcome =
          fleet.SubmitFeedback(setup.keys[t], setup.feedback[t][i]);
      ASSERT_TRUE(outcome.ok());
      ASSERT_EQ(*outcome, FleetFeedbackOutcome::kAccepted);
    }
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_TRUE(fleet.Drain().ok());
  fleet.Stop();

  EXPECT_EQ(missing.load(), 0u);
  EXPECT_EQ(nonfinite.load(), 0u);
  EXPECT_EQ(inconsistent.load(), 0u);
  EXPECT_GE(fleet.stats().reads_served, 0u);

  for (size_t t = 0; t < kTenants; ++t) {
    const std::vector<double> serial = SerialReplayEstimates(
        setup, t, kBuckets,
        {setup.feedback[t].begin(), setup.feedback[t].end()});
    std::shared_ptr<const Histogram> snap = fleet.Snapshot(setup.keys[t]);
    ASSERT_TRUE(snap != nullptr);
    const Workload& probes = setup.probes_of(t);
    for (size_t p = 0; p < probes.size(); ++p) {
      EXPECT_TRUE(BitEqual(snap->EstimateLinear(probes[p]), serial[p]))
          << "tenant " << t << " diverged from serial replay under stress";
    }
  }
}

TEST(FleetTest, TenantAddRemoveDuringLiveTraffic) {
  constexpr size_t kInitial = 8;
  constexpr size_t kBuckets = 16;
  FleetSetup setup = MakeFleetSetup(24, 40, 10);

  FleetConfig config;
  config.refiners = 3;
  config.queue_capacity = 256;
  ServiceFleet fleet(config);
  for (size_t t = 0; t < kInitial; ++t) {
    ASSERT_TRUE(fleet
                    .AddTenant(setup.keys[t],
                               MakeTenantHistogram(setup.variant_of(t),
                                                   kBuckets),
                               *setup.variant_of(t).executor)
                    .ok());
  }

  std::atomic<bool> stop{false};
  // Traffic thread: reads and feedback across all keys — including ones
  // being added and removed underneath it. kNotFound is expected there;
  // crashes and non-finite estimates are not.
  std::thread traffic([&] {
    size_t i = 0;
    while (!stop.load()) {
      const size_t t = i % setup.keys.size();
      const Workload& probes = setup.probes_of(t);
      StatusOr<double> est = fleet.Estimate(setup.keys[t], probes[i % probes.size()]);
      if (est.ok()) {
        EXPECT_TRUE(std::isfinite(*est));
      } else {
        EXPECT_EQ(est.status().code(), StatusCode::kNotFound);
      }
      const Workload& stream = setup.feedback[t];
      (void)fleet.SubmitFeedback(setup.keys[t], stream[i % stream.size()]);
      ++i;
    }
  });

  // A reader holding a snapshot across its tenant's removal keeps a valid
  // histogram.
  std::shared_ptr<const Histogram> held = fleet.Snapshot(setup.keys[0]);
  ASSERT_TRUE(held != nullptr);

  for (size_t round = 0; round < 4; ++round) {
    // Add 4 new tenants.
    for (size_t j = 0; j < 4; ++j) {
      const size_t t = kInitial + round * 4 + j;
      ASSERT_TRUE(fleet
                      .AddTenant(setup.keys[t],
                                 MakeTenantHistogram(setup.variant_of(t),
                                                     kBuckets),
                                 *setup.variant_of(t).executor)
                      .ok());
    }
    // Remove two of the earliest still-live tenants.
    for (size_t j = 0; j < 2; ++j) {
      const size_t t = round * 2 + j;
      ASSERT_TRUE(fleet.RemoveTenant(setup.keys[t]).ok());
      EXPECT_FALSE(fleet.HasTenant(setup.keys[t]));
    }
  }
  stop.store(true);
  traffic.join();

  EXPECT_TRUE(std::isfinite(held->Estimate(setup.probes_of(0)[0])))
      << "snapshot held across RemoveTenant must stay valid";

  EXPECT_TRUE(fleet.Drain().ok());
  fleet.Stop();

  FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.tenants, fleet.TenantKeys().size());
  EXPECT_EQ(stats.tenants, kInitial + 16 - 8);
  EXPECT_EQ(stats.tenants_added, kInitial + 16);
  EXPECT_EQ(stats.tenants_removed, 8u);
  EXPECT_EQ(stats.feedback_applied, stats.feedback_accepted)
      << "every accepted item is applied, even for removed tenants";
  EXPECT_EQ(stats.queue_depth, 0u);
  for (const std::string& key : fleet.TenantKeys()) {
    std::shared_ptr<const Histogram> snap = fleet.Snapshot(key);
    ASSERT_TRUE(snap != nullptr);
  }
}

// A feedback oracle that parks the claiming refiner inside its first Count
// until released — makes per-shard backpressure deterministic to provoke.
class GateOracle : public CardinalityOracle {
 public:
  explicit GateOracle(const CardinalityOracle& inner) : inner_(inner) {}

  double Count(const Box& box) const override {
    entered_.Open();
    release_.Wait();
    return inner_.Count(box);
  }

  void WaitUntilEntered() const { entered_.Wait(); }
  void Release() const { release_.Open(); }

 private:
  class Flag {
   public:
    void Open() {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        open_ = true;
      }
      cv_.notify_all();
    }
    void Wait() {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return open_; });
    }

   private:
    std::mutex mutex_;
    std::condition_variable cv_;
    bool open_ = false;
  };

  const CardinalityOracle& inner_;
  mutable Flag entered_;
  mutable Flag release_;
};

// Overloading one tenant's queue must shed only that tenant's feedback:
// the other shard keeps accepting, applying, and draining on the pool's
// remaining capacity.
TEST(FleetTest, QueueFullSheddingIsolatedToOverloadedShard) {
  FleetSetup setup = MakeFleetSetup(2, 48, 10);
  const DataVariant& va = setup.variant_of(0);
  const DataVariant& vb = setup.variant_of(1);
  GateOracle gate(*va.executor);

  FleetConfig config;
  config.refiners = 2;
  config.queue_capacity = 4;
  config.publish_batch = 4;
  ServiceFleet fleet(config);
  ASSERT_TRUE(
      fleet.AddTenant("gated", MakeTenantHistogram(va, 16), gate).ok());
  ASSERT_TRUE(
      fleet.AddTenant("healthy", MakeTenantHistogram(vb, 16), *vb.executor)
          .ok());

  // First item parks one pool worker inside the gated tenant's oracle.
  ASSERT_EQ(*fleet.SubmitFeedback("gated", setup.feedback[0][0]),
            FleetFeedbackOutcome::kAccepted);
  gate.WaitUntilEntered();

  // The gated shard's queue fills to capacity, then sheds — per shard, not
  // per fleet.
  size_t accepted = 0, shed = 0;
  for (size_t i = 1; i < 9; ++i) {
    StatusOr<FleetFeedbackOutcome> outcome =
        fleet.SubmitFeedback("gated", setup.feedback[0][i]);
    ASSERT_TRUE(outcome.ok());
    if (*outcome == FleetFeedbackOutcome::kAccepted) {
      ++accepted;
    } else {
      EXPECT_EQ(*outcome, FleetFeedbackOutcome::kQueueFull);
      ++shed;
    }
  }
  EXPECT_EQ(accepted, config.queue_capacity);
  EXPECT_EQ(shed, 8 - config.queue_capacity);

  // The healthy tenant rides the pool's other worker: its stream flows
  // end to end while the gated shard stays parked. kQueueFull here is
  // legitimate transient backpressure against the tiny shared capacity, so
  // the producer retries; what must never happen is kStopped or kNotFound —
  // overload on the gated shard leaking across would surface as either.
  std::vector<Box> healthy_stream(setup.feedback[1].begin(),
                                  setup.feedback[1].end());
  for (const Box& q : healthy_stream) {
    for (;;) {
      StatusOr<FleetFeedbackOutcome> outcome =
          fleet.SubmitFeedback("healthy", q);
      ASSERT_TRUE(outcome.ok());
      if (*outcome == FleetFeedbackOutcome::kAccepted) break;
      ASSERT_EQ(*outcome, FleetFeedbackOutcome::kQueueFull)
          << "overload must not leak across shards";
      std::this_thread::yield();
    }
  }
  EXPECT_TRUE(fleet.DrainTenant("healthy").ok());

  const std::vector<double> serial =
      SerialReplayEstimates(setup, 1, 16, healthy_stream);
  std::shared_ptr<const Histogram> snap = fleet.Snapshot("healthy");
  const Workload& probes = setup.probes_of(1);
  for (size_t p = 0; p < probes.size(); ++p) {
    EXPECT_TRUE(BitEqual(snap->EstimateLinear(probes[p]), serial[p]));
  }

  gate.Release();
  EXPECT_TRUE(fleet.Drain().ok());
  fleet.Stop();
  FleetStats stats = fleet.stats();
  // The healthy producer's retries may also have bounced off the tiny
  // queue, so the fleet-wide counter is a lower bound of the gated sheds.
  EXPECT_GE(stats.feedback_dropped_full, shed);
  EXPECT_EQ(stats.feedback_applied,
            accepted + 1 + healthy_stream.size());
}

/// Counts concurrent Count() entries per tenant: the scheduler-unit probe
/// for the claiming rule. Any overlap means two refiners ran one shard.
class ConcurrencyProbeOracle : public CardinalityOracle {
 public:
  explicit ConcurrencyProbeOracle(const CardinalityOracle& inner)
      : inner_(inner) {}

  double Count(const Box& box) const override {
    const int now = entries_.fetch_add(1, std::memory_order_acq_rel) + 1;
    int seen = max_entries_.load(std::memory_order_relaxed);
    while (now > seen &&
           !max_entries_.compare_exchange_weak(seen, now,
                                               std::memory_order_relaxed)) {
    }
    // Widen the overlap window: a violating second refiner would have to
    // land inside the inner count *plus* this yield.
    std::this_thread::yield();
    const double result = inner_.Count(box);
    entries_.fetch_sub(1, std::memory_order_acq_rel);
    return result;
  }

  int max_entries() const {
    return max_entries_.load(std::memory_order_relaxed);
  }

 private:
  const CardinalityOracle& inner_;
  mutable std::atomic<int> entries_{0};
  mutable std::atomic<int> max_entries_{0};
};

// Scheduler unit: 100 tenants churned by 4 producers over a 4-refiner pool.
// The per-shard claim must keep every shard on at most one refiner at a
// time, and Drain() must reach quiescence (applied == accepted, empty
// queues) despite the churn.
TEST(FleetSchedulerTest, WorkClaimingNeverOverlapsAndDrainsToQuiescence) {
  constexpr size_t kTenants = 100;
  constexpr size_t kProducers = 4;
  constexpr size_t kRoundsPerProducer = 4;
  constexpr size_t kBuckets = 12;
  FleetSetup setup = MakeFleetSetup(kTenants, 16, 4);

  FleetConfig config;
  config.refiners = 4;
  config.queue_capacity = 64;
  config.publish_batch = 4;
  ServiceFleet fleet(config);

  std::vector<std::unique_ptr<ConcurrencyProbeOracle>> probes;
  probes.reserve(kTenants);
  for (size_t t = 0; t < kTenants; ++t) {
    probes.push_back(std::make_unique<ConcurrencyProbeOracle>(
        *setup.variant_of(t).executor));
    ASSERT_TRUE(fleet
                    .AddTenant(setup.keys[t],
                               MakeTenantHistogram(setup.variant_of(t),
                                                   kBuckets),
                               *probes[t])
                    .ok());
  }

  std::atomic<size_t> accepted{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t round = 0; round < kRoundsPerProducer; ++round) {
        for (size_t t = 0; t < kTenants; ++t) {
          const Workload& stream = setup.feedback[t];
          StatusOr<FleetFeedbackOutcome> outcome = fleet.SubmitFeedback(
              setup.keys[t], stream[(p + round) % stream.size()]);
          if (outcome.ok() &&
              *outcome == FleetFeedbackOutcome::kAccepted) {
            accepted.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  EXPECT_TRUE(fleet.Drain().ok());

  for (size_t t = 0; t < kTenants; ++t) {
    EXPECT_EQ(probes[t]->max_entries(), 1)
        << "two refiners entered tenant " << t << " concurrently";
  }
  FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.feedback_accepted, accepted.load());
  EXPECT_EQ(stats.feedback_applied, accepted.load())
      << "Drain must reach quiescence";
  EXPECT_EQ(stats.queue_depth, 0u);

  fleet.Stop();
  EXPECT_EQ(fleet.stats().feedback_applied, accepted.load());
}

}  // namespace
}  // namespace sthist

#include "histogram/isomer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "data/generators.h"
#include "histogram/stholes.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

IsomerConfig Config(size_t buckets) {
  IsomerConfig config;
  config.max_buckets = buckets;
  return config;
}

TEST(IsomerTest, FreshHistogramIsUniform) {
  IsomerHistogram h(Box::Cube(2, 0, 100), 1000, Config(10));
  EXPECT_EQ(h.bucket_count(), 0u);
  EXPECT_DOUBLE_EQ(h.Estimate(Box::Cube(2, 0, 100)), 1000.0);
  EXPECT_DOUBLE_EQ(h.Estimate(Box::Cube(2, 0, 50)), 250.0);
  EXPECT_EQ(h.constraint_count(), 1u) << "the cardinality constraint";
}

TEST(IsomerTest, SingleConstraintBecomesConsistent) {
  Dataset data(2);
  Rng rng(2);
  Point p(2);
  for (int i = 0; i < 500; ++i) {
    p[0] = rng.Uniform(10, 30);
    p[1] = rng.Uniform(10, 30);
    data.Append(p);
  }
  Executor executor(data);

  IsomerHistogram h(Box::Cube(2, 0, 100), 500, Config(20));
  Box q = Box::Cube(2, 5, 35);
  h.Refine(q, executor);
  EXPECT_NEAR(h.Estimate(q), 500.0, 5.0)
      << "scaling reconciles the new constraint";
  EXPECT_LT(h.MaxConstraintViolation(), 0.02);
  h.CheckInvariants();
}

TEST(IsomerTest, TotalMassStaysConsistent) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 2000;
  data_config.noise_tuples = 400;
  GeneratedData g = MakeCross(data_config);
  Executor executor(g.data);

  IsomerHistogram h(g.domain, static_cast<double>(g.data.size()),
                    Config(30));
  WorkloadConfig wc;
  wc.num_queries = 100;
  Workload w = MakeWorkload(g.domain, wc);
  for (const Box& q : w) h.Refine(q, executor);

  // The permanent cardinality constraint keeps the total near the relation
  // size even though individual scalings move mass around.
  EXPECT_NEAR(h.TotalFrequency(), static_cast<double>(g.data.size()),
              0.05 * static_cast<double>(g.data.size()));
  h.CheckInvariants();
}

TEST(IsomerTest, BudgetIsEnforced) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 1000;
  data_config.noise_tuples = 200;
  GeneratedData g = MakeCross(data_config);
  Executor executor(g.data);

  IsomerHistogram h(g.domain, static_cast<double>(g.data.size()),
                    Config(5));
  WorkloadConfig wc;
  wc.num_queries = 80;
  Workload w = MakeWorkload(g.domain, wc);
  for (const Box& q : w) {
    h.Refine(q, executor);
    ASSERT_LE(h.bucket_count(), 5u);
    h.CheckInvariants();
  }
}

TEST(IsomerTest, ConstraintWindowSlides) {
  Dataset data(2);
  data.Append(Point{50.0, 50.0});
  Executor executor(data);

  IsomerConfig config = Config(50);
  config.max_constraints = 10;
  IsomerHistogram h(Box::Cube(2, 0, 100), 1, config);
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    double x = rng.Uniform(0, 90);
    double y = rng.Uniform(0, 90);
    h.Refine(Box({x, y}, {x + 10, y + 10}), executor);
    EXPECT_LE(h.constraint_count(), 10u);
  }
}

TEST(IsomerTest, TrainingReducesWorkloadError) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 3000;
  data_config.noise_tuples = 600;
  GeneratedData g = MakeCross(data_config);
  Executor executor(g.data);

  IsomerHistogram h(g.domain, static_cast<double>(g.data.size()),
                    Config(50));
  WorkloadConfig wc;
  wc.num_queries = 200;
  Workload w = MakeWorkload(g.domain, wc);

  auto workload_error = [&]() {
    double total = 0;
    for (const Box& q : w) {
      total += std::abs(h.Estimate(q) - executor.Count(q));
    }
    return total / static_cast<double>(w.size());
  };

  double untrained = workload_error();
  for (const Box& q : w) h.Refine(q, executor);
  EXPECT_LT(workload_error(), 0.5 * untrained);
}

TEST(IsomerTest, RecentConstraintsStayNearlySatisfied) {
  GaussConfig data_config;
  data_config.dim = 3;
  data_config.max_subspace_dims = 3;
  data_config.cluster_tuples = 5000;
  data_config.noise_tuples = 500;
  GeneratedData g = MakeGauss(data_config);
  Executor executor(g.data);

  IsomerHistogram h(g.domain, static_cast<double>(g.data.size()),
                    Config(80));
  WorkloadConfig wc;
  wc.num_queries = 120;
  wc.volume_fraction = 0.02;
  Workload w = MakeWorkload(g.domain, wc);
  for (const Box& q : w) h.Refine(q, executor);
  // The inconsistency threshold (0.5) bounds what the retained window may
  // still be violated by after solving.
  IsomerConfig reference;
  EXPECT_LT(h.MaxConstraintViolation(),
            reference.inconsistency_threshold + 0.05)
      << "scaling keeps the retained window approximately consistent";
}

TEST(IsomerTest, ComparableToSTHolesOnSimpleData) {
  // Not a supremacy claim — just a sanity band: ISOMER should land in the
  // same error regime as STHoles on easy data, far below uniform.
  CrossConfig data_config;
  data_config.tuples_per_cluster = 3000;
  data_config.noise_tuples = 600;
  GeneratedData g = MakeCross(data_config);
  Executor executor(g.data);

  WorkloadConfig wc;
  wc.num_queries = 300;
  Workload train = MakeWorkload(g.domain, wc);
  wc.seed = 11;
  Workload eval = MakeWorkload(g.domain, wc);

  IsomerHistogram isomer(g.domain, static_cast<double>(g.data.size()),
                         Config(50));
  for (const Box& q : train) isomer.Refine(q, executor);

  STHolesConfig sc;
  sc.max_buckets = 50;
  STHoles holes(g.domain, static_cast<double>(g.data.size()), sc);
  for (const Box& q : train) holes.Refine(q, executor);

  auto mae = [&](const Histogram& h) {
    double total = 0;
    for (const Box& q : eval) {
      total += std::abs(h.Estimate(q) - executor.Count(q));
    }
    return total / static_cast<double>(eval.size());
  };

  double uniform_mae;
  {
    IsomerHistogram fresh(g.domain, static_cast<double>(g.data.size()),
                          Config(50));
    uniform_mae = mae(fresh);
  }
  EXPECT_LT(mae(isomer), 0.6 * uniform_mae);
  EXPECT_LT(mae(isomer), 3.0 * mae(holes));
}

}  // namespace
}  // namespace sthist

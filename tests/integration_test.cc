// End-to-end reproduction checks at test scale: the full pipeline
// (generate -> cluster -> initialize -> train -> simulate) must show the
// paper's qualitative effects on every dataset family.

#include <gtest/gtest.h>

#include "eval/runner.h"
#include "histogram/census.h"

namespace sthist {
namespace {

ExperimentConfig TestScaleConfig() {
  ExperimentConfig config;
  config.buckets = 50;
  config.train_queries = 200;
  config.sim_queries = 200;
  return config;
}

TEST(IntegrationTest, InitializationHelpsOnCross) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 5000;
  data_config.noise_tuples = 1000;
  Experiment experiment(MakeCross(data_config));

  ExperimentConfig config = TestScaleConfig();
  config.mineclus.alpha = 0.05;
  ExperimentResult uninit = experiment.Run(config);
  config.initialize = true;
  ExperimentResult init = experiment.Run(config);

  EXPECT_LT(init.nae, uninit.nae);
  EXPECT_LT(init.nae, 0.5) << "Fig. 11: initialized Cross error is low";
}

TEST(IntegrationTest, InitializationHelpsOnGauss) {
  GaussConfig data_config;
  data_config.cluster_tuples = 20000;
  data_config.noise_tuples = 2000;
  Experiment experiment(MakeGauss(data_config));

  ExperimentConfig config = TestScaleConfig();
  config.mineclus.alpha = 0.02;
  config.mineclus.width_fraction = 0.06;
  ExperimentResult uninit = experiment.Run(config);
  config.initialize = true;
  ExperimentResult init = experiment.Run(config);

  EXPECT_LT(init.nae, uninit.nae)
      << "Fig. 12: the benefit is larger on subspace-clustered data";
}

TEST(IntegrationTest, InitializationHelpsOnSky) {
  SkyConfig data_config;
  data_config.tuples = 40000;
  Experiment experiment(MakeSky(data_config));

  ExperimentConfig config = TestScaleConfig();
  config.mineclus.alpha = 0.01;
  ExperimentResult uninit = experiment.Run(config);
  config.initialize = true;
  ExperimentResult init = experiment.Run(config);

  EXPECT_LT(init.nae, uninit.nae) << "Fig. 13's direction at test scale";
}

TEST(IntegrationTest, UninitializedNeverCreatesSubspaceBuckets) {
  // §5.3: "For all bucket counts, the uninitialized histogram has not
  // created a single subspace bucket."
  SkyConfig data_config;
  data_config.tuples = 20000;
  Experiment experiment(MakeSky(data_config));

  ExperimentConfig config = TestScaleConfig();
  ExperimentResult uninit = experiment.Run(config);
  // Drilling cannot invent spanning buckets; only the sibling-merge
  // enclosure growth can very rarely produce one.
  EXPECT_LE(uninit.subspace_buckets, 1u);
}

TEST(IntegrationTest, InitializedStartsWithSubspaceBuckets) {
  SkyConfig data_config;
  data_config.tuples = 20000;
  Experiment experiment(MakeSky(data_config));

  // No training: inspect the histogram right after initialization.
  ExperimentConfig config = TestScaleConfig();
  config.buckets = 100;
  config.train_queries = 0;
  config.sim_queries = 50;
  config.learn_during_sim = false;
  config.initialize = true;
  ExperimentResult init = experiment.Run(config);
  EXPECT_GT(init.subspace_buckets, 0u)
      << "the initializer plants extended-BR subspace buckets";
}

TEST(IntegrationTest, HigherVolumeQueriesKeepTheEffect) {
  // Fig. 14 direction: with 2% queries the initialized histogram still wins.
  SkyConfig data_config;
  data_config.tuples = 30000;
  Experiment experiment(MakeSky(data_config));

  ExperimentConfig config = TestScaleConfig();
  config.volume_fraction = 0.02;
  ExperimentResult uninit = experiment.Run(config);
  config.initialize = true;
  ExperimentResult init = experiment.Run(config);
  EXPECT_LT(init.nae, uninit.nae);
}

TEST(IntegrationTest, DataCenteredWorkloadsShowTheSameTrend) {
  // §5.1: "we also have conducted experiments with different workload-
  // generation patterns, and the trends have been the same."
  GaussConfig data_config;
  data_config.cluster_tuples = 15000;
  data_config.noise_tuples = 1500;
  Experiment experiment(MakeGauss(data_config));

  ExperimentConfig config = TestScaleConfig();
  config.centers = CenterDistribution::kData;
  config.mineclus.alpha = 0.02;
  ExperimentResult uninit = experiment.Run(config);
  config.initialize = true;
  ExperimentResult init = experiment.Run(config);
  EXPECT_LT(init.nae, uninit.nae);
}

}  // namespace
}  // namespace sthist

#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/generators.h"

namespace sthist {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(CsvTest, RoundTripPreservesValues) {
  Dataset data(3);
  data.Append(Point{1.5, -2.25, 3.0});
  data.Append(Point{0.0, 1e-9, 123456.789});

  std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(data, path));
  std::optional<Dataset> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), data.size());
  ASSERT_EQ(loaded->dim(), data.dim());
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t d = 0; d < data.dim(); ++d) {
      EXPECT_DOUBLE_EQ(loaded->value(i, d), data.value(i, d));
    }
  }
}

TEST(CsvTest, RoundTripGeneratedDataset) {
  CrossConfig config;
  config.tuples_per_cluster = 200;
  config.noise_tuples = 50;
  GeneratedData g = MakeCross(config);
  std::string path = TempPath("cross.csv");
  ASSERT_TRUE(WriteCsv(g.data, path));
  std::optional<Dataset> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), g.data.size());
  EXPECT_EQ(loaded->Bounds(), g.data.Bounds());
}

TEST(CsvTest, HeaderRowIsSkipped) {
  std::string path = TempPath("header.csv");
  {
    std::ofstream out(path);
    out << "x,y\n1,2\n3,4\n";
  }
  std::optional<Dataset> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->dim(), 2u);
  EXPECT_DOUBLE_EQ(loaded->value(1, 1), 4.0);
}

TEST(CsvTest, MalformedMidFileFails) {
  std::string path = TempPath("bad.csv");
  {
    std::ofstream out(path);
    out << "1,2\nnot,numbers\n";
  }
  EXPECT_FALSE(ReadCsv(path).has_value());
}

TEST(CsvTest, RaggedRowsFail) {
  std::string path = TempPath("ragged.csv");
  {
    std::ofstream out(path);
    out << "1,2\n3,4,5\n";
  }
  EXPECT_FALSE(ReadCsv(path).has_value());
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_FALSE(ReadCsv(TempPath("does_not_exist.csv")).has_value());
}

TEST(CsvTest, EmptyFileFails) {
  std::string path = TempPath("empty.csv");
  { std::ofstream out(path); }
  EXPECT_FALSE(ReadCsv(path).has_value());
}

}  // namespace
}  // namespace sthist

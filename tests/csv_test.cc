#include "data/csv.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "core/status.h"
#include "data/generators.h"

namespace sthist {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string WriteFile(const std::string& name, const std::string& text) {
  std::string path = TempPath(name);
  std::ofstream out(path);
  out << text;
  return path;
}

// Asserts ReadCsv fails with the given code and that the message carries
// the diagnostic fragment (line/column info for malformed files).
void ExpectReadFails(const std::string& path, StatusCode code,
                     const std::string& fragment) {
  StatusOr<Dataset> loaded = ReadCsv(path);
  ASSERT_FALSE(loaded.ok()) << path;
  EXPECT_EQ(loaded.status().code(), code) << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find(fragment), std::string::npos)
      << "status was: " << loaded.status().ToString();
}

TEST(CsvTest, RoundTripPreservesValues) {
  Dataset data(3);
  data.Append(Point{1.5, -2.25, 3.0});
  data.Append(Point{0.0, 1e-9, 123456.789});

  std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(data, path).ok());
  StatusOr<Dataset> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), data.size());
  ASSERT_EQ(loaded->dim(), data.dim());
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t d = 0; d < data.dim(); ++d) {
      EXPECT_DOUBLE_EQ(loaded->value(i, d), data.value(i, d));
    }
  }
}

TEST(CsvTest, RoundTripGeneratedDataset) {
  CrossConfig config;
  config.tuples_per_cluster = 200;
  config.noise_tuples = 50;
  GeneratedData g = MakeCross(config);
  std::string path = TempPath("cross.csv");
  ASSERT_TRUE(WriteCsv(g.data, path).ok());
  StatusOr<Dataset> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), g.data.size());
  EXPECT_EQ(loaded->Bounds(), g.data.Bounds());
}

TEST(CsvTest, HeaderRowIsSkipped) {
  std::string path = WriteFile("header.csv", "x,y\n1,2\n3,4\n");
  StatusOr<Dataset> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->dim(), 2u);
  EXPECT_DOUBLE_EQ(loaded->value(1, 1), 4.0);
}

TEST(CsvTest, MalformedMidFileNamesLineAndColumn) {
  std::string path = WriteFile("bad.csv", "1,2\n3,oops\n5,6\n");
  ExpectReadFails(path, StatusCode::kInvalidArgument,
                  "line 2, column 2: non-numeric field");
}

TEST(CsvTest, SecondHeaderIsAnError) {
  // Only the very first line may be a header; textual junk later is data
  // corruption, not a header.
  std::string path = WriteFile("twoheaders.csv", "x,y\n1,2\nx,y\n");
  ExpectReadFails(path, StatusCode::kInvalidArgument,
                  "line 3, column 1: non-numeric field");
}

TEST(CsvTest, RaggedRowsNameExpectedAndActualArity) {
  std::string path = WriteFile("ragged.csv", "1,2\n3,4,5\n");
  ExpectReadFails(path, StatusCode::kInvalidArgument,
                  "line 2: expected 2 fields, got 3");
}

TEST(CsvTest, TruncatedLastLineFails) {
  // A write that died mid-tuple leaves a short final row.
  std::string path = WriteFile("truncated.csv", "1,2,3\n4,5,6\n7,8");
  ExpectReadFails(path, StatusCode::kInvalidArgument,
                  "line 3: expected 3 fields, got 2");
}

TEST(CsvTest, NanLiteralIsRejected) {
  std::string path = WriteFile("nan.csv", "1,2\nnan,4\n");
  ExpectReadFails(path, StatusCode::kInvalidArgument,
                  "line 2, column 1: non-finite value");
}

TEST(CsvTest, InfLiteralIsRejected) {
  std::string path = WriteFile("inf.csv", "1,2\n3,-inf\n");
  ExpectReadFails(path, StatusCode::kInvalidArgument,
                  "line 2, column 2: non-finite value");
}

TEST(CsvTest, EmptyFieldIsRejected) {
  std::string path = WriteFile("emptyfield.csv", "1,2\n3,\n");
  ExpectReadFails(path, StatusCode::kInvalidArgument, "line 2");
}

TEST(CsvTest, MissingFileIsNotFound) {
  StatusOr<Dataset> loaded = ReadCsv(TempPath("does_not_exist.csv"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_NE(loaded.status().message().find("does_not_exist.csv"),
            std::string::npos);
}

TEST(CsvTest, EmptyFileFails) {
  std::string path = WriteFile("empty.csv", "");
  ExpectReadFails(path, StatusCode::kInvalidArgument, "no data rows");
}

TEST(CsvTest, HeaderOnlyFileFails) {
  std::string path = WriteFile("headeronly.csv", "x,y,z\n");
  ExpectReadFails(path, StatusCode::kInvalidArgument, "no data rows");
}

TEST(CsvTest, BlankLinesAreTolerated) {
  std::string path = WriteFile("blank.csv", "1,2\n\n3,4\n\n");
  StatusOr<Dataset> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 2u);
}

TEST(CsvTest, WriteToUnwritablePathIsIoError) {
  Dataset data(2);
  data.Append(Point{1.0, 2.0});
  Status status = WriteCsv(data, "/nonexistent-dir/out.csv");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace sthist

#include "histogram/trivial.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/generators.h"
#include "workload/query.h"

namespace sthist {
namespace {

TEST(TrivialTest, FullDomainQueryReturnsTotal) {
  Box domain = Box::Cube(2, 0, 100);
  TrivialHistogram h(domain, 5000);
  EXPECT_DOUBLE_EQ(h.Estimate(domain), 5000.0);
}

TEST(TrivialTest, EstimateIsProportionalToVolume) {
  Box domain = Box::Cube(2, 0, 100);
  TrivialHistogram h(domain, 1000);
  EXPECT_DOUBLE_EQ(h.Estimate(Box::Cube(2, 0, 50)), 250.0)
      << "a quarter of the area holds a quarter of the mass";
  EXPECT_DOUBLE_EQ(h.Estimate(Box::Cube(2, 0, 10)), 10.0);
}

TEST(TrivialTest, QueryOutsideDomainEstimatesZero) {
  Box domain = Box::Cube(2, 0, 100);
  TrivialHistogram h(domain, 1000);
  EXPECT_DOUBLE_EQ(h.Estimate(Box::Cube(2, 200, 300)), 0.0);
}

TEST(TrivialTest, QueryPartiallyOutsideClamps) {
  Box domain = Box::Cube(1, 0, 100);
  TrivialHistogram h(domain, 100);
  // [-50, 50] overlaps half the domain.
  EXPECT_DOUBLE_EQ(h.Estimate(Box({-50.0}, {50.0})), 50.0);
}

TEST(TrivialTest, RefineIsANoop) {
  GeneratedData g = MakeCross(CrossConfig{.tuples_per_cluster = 500,
                                          .noise_tuples = 100});
  Executor executor(g.data);
  TrivialHistogram h(g.domain, static_cast<double>(g.data.size()));
  Box q = Box::Cube(2, 400, 600);
  double before = h.Estimate(q);
  h.Refine(q, executor);
  EXPECT_DOUBLE_EQ(h.Estimate(q), before);
  EXPECT_EQ(h.bucket_count(), 1u);
}

TEST(TrivialTest, ExactOnUniformData) {
  // On genuinely uniform data the trivial histogram is nearly exact — the
  // baseline property that makes the normalized error metric meaningful.
  Dataset data(2);
  Rng rng(5);
  Point p(2);
  for (int i = 0; i < 50000; ++i) {
    p[0] = rng.Uniform(0, 100);
    p[1] = rng.Uniform(0, 100);
    data.Append(p);
  }
  Executor executor(data);
  TrivialHistogram h(Box::Cube(2, 0, 100), 50000);
  Box q = Box::Cube(2, 20, 60);
  double real = executor.Count(q);
  EXPECT_NEAR(h.Estimate(q), real, 0.05 * real);
}

}  // namespace
}  // namespace sthist

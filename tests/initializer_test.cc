#include "init/initializer.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/generators.h"
#include "histogram/census.h"
#include "histogram/stholes.h"
#include "workload/query.h"

namespace sthist {
namespace {

SubspaceCluster MakeCluster(Box core, std::vector<size_t> dims, double score) {
  SubspaceCluster c;
  c.core_box = std::move(core);
  c.relevant_dims = std::move(dims);
  c.score = score;
  return c;
}

TEST(ExtendedBrTest, SpansDomainInIrrelevantDims) {
  Box domain = Box::Cube(3, 0, 100);
  SubspaceCluster c = MakeCluster(
      Box({10.0, 20.0, 30.0}, {15.0, 25.0, 35.0}), {0, 2}, 1.0);
  Box ebr = ExtendedBoundingRectangle(c, domain);
  EXPECT_DOUBLE_EQ(ebr.lo(0), 10.0);
  EXPECT_DOUBLE_EQ(ebr.hi(0), 15.0);
  EXPECT_DOUBLE_EQ(ebr.lo(1), 0.0) << "irrelevant dim spans the domain";
  EXPECT_DOUBLE_EQ(ebr.hi(1), 100.0);
  EXPECT_DOUBLE_EQ(ebr.lo(2), 30.0);
  EXPECT_DOUBLE_EQ(ebr.hi(2), 35.0);
}

TEST(ExtendedBrTest, FullDimensionalClusterIsJustTheMbr) {
  Box domain = Box::Cube(2, 0, 100);
  SubspaceCluster c =
      MakeCluster(Box({10.0, 20.0}, {15.0, 25.0}), {0, 1}, 1.0);
  Box ebr = ExtendedBoundingRectangle(c, domain);
  EXPECT_EQ(ebr, c.core_box);
}

class CountingOracle : public CardinalityOracle {
 public:
  explicit CountingOracle(const Dataset& data) : executor_(data) {}
  double Count(const Box& box) const override {
    ++calls_;
    return executor_.Count(box);
  }
  size_t calls() const { return calls_; }

 private:
  Executor executor_;
  mutable size_t calls_ = 0;
};

TEST(InitializerTest, FeedsClustersAsInitialBuckets) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 2000;
  data_config.noise_tuples = 400;
  GeneratedData g = MakeCross(data_config);
  CountingOracle oracle(g.data);

  std::vector<SubspaceCluster> clusters;
  for (const PlantedCluster& truth : g.truth) {
    SubspaceCluster c;
    c.core_box = truth.extent;
    c.relevant_dims = truth.relevant_dims;
    c.score = static_cast<double>(truth.tuples);
    clusters.push_back(std::move(c));
  }

  STHolesConfig config;
  config.max_buckets = 50;
  STHoles hist(g.domain, static_cast<double>(g.data.size()), config);
  size_t fed = InitializeHistogram(clusters, g.domain, oracle,
                                   InitializerConfig{}, &hist);
  EXPECT_EQ(fed, 2u);
  EXPECT_GE(hist.bucket_count(), 2u);
  // The first-fed band survives as a spanning bucket; the second overlaps it
  // and gets shrunk by STHoles, so at least one subspace bucket remains.
  EXPECT_GE(CensusSubspaceBuckets(hist).subspace_buckets, 1u);
}

TEST(InitializerTest, MaxClustersCapsFeeding) {
  Box domain = Box::Cube(2, 0, 100);
  Dataset data(2);
  data.Append(Point{50.0, 50.0});
  CountingOracle oracle(data);

  std::vector<SubspaceCluster> clusters;
  for (int i = 0; i < 5; ++i) {
    double lo = 10.0 * i;
    clusters.push_back(MakeCluster(Box({lo, lo}, {lo + 5, lo + 5}), {0, 1},
                                   100.0 - i));
  }

  STHolesConfig config;
  config.max_buckets = 50;
  STHoles hist(domain, 1, config);
  InitializerConfig init;
  init.max_clusters = 2;
  EXPECT_EQ(InitializeHistogram(clusters, domain, oracle, init, &hist), 2u);
  EXPECT_EQ(hist.bucket_count(), 2u);
}

TEST(InitializerTest, FeedingOrderShapesOverlappingBuckets) {
  // Two overlapping clusters: whichever is fed first keeps its exact box;
  // the second is shrunk around it (the mechanism behind the paper's
  // importance ordering and the Fig. 13 reversed-order control).
  Dataset data(2);
  Rng rng(8);
  Point p(2);
  for (int i = 0; i < 500; ++i) {
    p[0] = rng.Uniform(10, 40);
    p[1] = rng.Uniform(10, 40);
    data.Append(p);
  }
  CountingOracle oracle(data);
  Box domain = Box::Cube(2, 0, 100);

  Box box_a({10.0, 10.0}, {30.0, 30.0});
  Box box_b({20.0, 20.0}, {40.0, 40.0});
  std::vector<SubspaceCluster> clusters = {
      MakeCluster(box_a, {0, 1}, 2.0),  // More important.
      MakeCluster(box_b, {0, 1}, 1.0),
  };

  auto bucket_boxes = [&](bool reversed) {
    STHolesConfig config;
    config.max_buckets = 20;
    STHoles hist(domain, 500, config);
    InitializerConfig init;
    init.reversed = reversed;
    InitializeHistogram(clusters, domain, oracle, init, &hist);
    std::vector<Box> boxes;
    for (const STHoles::BucketInfo& info : hist.Dump()) {
      if (info.depth > 0) boxes.push_back(info.box);
    }
    return boxes;
  };

  std::vector<Box> normal = bucket_boxes(false);
  std::vector<Box> reversed = bucket_boxes(true);

  auto contains = [](const std::vector<Box>& boxes, const Box& b) {
    for (const Box& x : boxes) {
      if (x == b) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(normal, box_a))
      << "fed first, the important cluster keeps its exact box";
  EXPECT_TRUE(contains(reversed, box_b))
      << "reversed order protects the unimportant cluster instead";
  EXPECT_FALSE(contains(normal, box_b))
      << "the later overlapping cluster is shrunk";
  EXPECT_FALSE(contains(reversed, box_a));
}

TEST(InitializerTest, MbrAblationUsesCoreBox) {
  Box domain = Box::Cube(2, 0, 100);
  Dataset data(2);
  data.Append(Point{50.0, 12.0});
  CountingOracle oracle(data);

  std::vector<SubspaceCluster> clusters = {
      MakeCluster(Box({40.0, 10.0}, {60.0, 15.0}), {1}, 10.0)};

  STHolesConfig config;
  config.max_buckets = 10;

  STHoles extended(domain, 1, config);
  InitializerConfig init_extended;
  init_extended.use_extended_br = true;
  InitializeHistogram(clusters, domain, oracle, init_extended, &extended);
  EXPECT_EQ(CensusSubspaceBuckets(extended).subspace_buckets, 1u)
      << "extended BR spans the irrelevant dimension";

  STHoles mbr(domain, 1, config);
  InitializerConfig init_mbr;
  init_mbr.use_extended_br = false;
  InitializeHistogram(clusters, domain, oracle, init_mbr, &mbr);
  EXPECT_EQ(CensusSubspaceBuckets(mbr).subspace_buckets, 0u)
      << "plain MBR keeps the cluster full-dimensional";
}

TEST(InitializerTest, ZeroVolumeClustersAreSkipped) {
  Box domain = Box::Cube(2, 0, 100);
  Dataset data(2);
  data.Append(Point{50.0, 50.0});
  CountingOracle oracle(data);

  // A degenerate (single-point) full-dimensional cluster.
  std::vector<SubspaceCluster> clusters = {
      MakeCluster(Box({50.0, 50.0}, {50.0, 50.0}), {0, 1}, 10.0)};
  STHolesConfig config;
  config.max_buckets = 10;
  STHoles hist(domain, 1, config);
  InitializerConfig init;
  init.use_extended_br = false;
  EXPECT_EQ(InitializeHistogram(clusters, domain, oracle, init, &hist), 0u);
  EXPECT_EQ(hist.bucket_count(), 0u);
}

}  // namespace
}  // namespace sthist

// Fault-injection robustness suite: every self-tuning histogram must survive
// adversarially corrupted workloads, datasets, and feedback oracles without
// aborting, keep its estimates finite, and account for every degradation in
// its RobustnessStats. The injected faults are deterministic (seeded), so a
// failure here reproduces exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "data/generators.h"
#include "eval/runner.h"
#include "histogram/isomer.h"
#include "histogram/robustness.h"
#include "histogram/stgrid.h"
#include "histogram/stholes.h"
#include "testing/fault_injection.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// Builds a box with arbitrary (possibly invalid) bounds via the mutators,
// bypassing the constructor invariant — the same way a buggy client would.
Box RawBox(const std::vector<double>& lo, const std::vector<double>& hi) {
  Box box = Box::Cube(lo.size(), 0.0, 1.0);
  for (size_t d = 0; d < lo.size(); ++d) {
    box.set_lo(d, lo[d]);
    box.set_hi(d, hi[d]);
  }
  return box;
}

GeneratedData SmallCross() {
  CrossConfig config;
  config.tuples_per_cluster = 400;
  config.noise_tuples = 100;
  return MakeCross(config);
}

// ---------------------------------------------------------------------------
// SanitizeFeedbackQuery / IsEstimableQuery / SanitizingOracle units
// ---------------------------------------------------------------------------

TEST(SanitizeFeedbackQueryTest, CleanBoxPassesUntouched) {
  Box domain = Box::Cube(2, 0.0, 10.0);
  Box query({1.0, 2.0}, {3.0, 4.0});
  RobustnessStats stats;
  std::optional<Box> out = SanitizeFeedbackQuery(domain, query, &stats);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, query);
  EXPECT_EQ(stats.total(), 0u);
}

TEST(SanitizeFeedbackQueryTest, InvertedIntervalIsSwapped) {
  Box domain = Box::Cube(2, 0.0, 10.0);
  Box query = RawBox({3.0, 2.0}, {1.0, 4.0});  // Dim 0 inverted.
  RobustnessStats stats;
  std::optional<Box> out = SanitizeFeedbackQuery(domain, query, &stats);
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(out->lo(0), 1.0);
  EXPECT_DOUBLE_EQ(out->hi(0), 3.0);
  EXPECT_EQ(stats.sanitized_queries, 1u);
  EXPECT_EQ(stats.rejected_queries, 0u);
}

TEST(SanitizeFeedbackQueryTest, OutOfDomainBoxIsClamped) {
  Box domain = Box::Cube(2, 0.0, 10.0);
  Box query({-5.0, 8.0}, {3.0, 20.0});
  RobustnessStats stats;
  std::optional<Box> out = SanitizeFeedbackQuery(domain, query, &stats);
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(out->lo(0), 0.0);
  EXPECT_DOUBLE_EQ(out->hi(1), 10.0);
  EXPECT_EQ(stats.sanitized_queries, 1u);
}

TEST(SanitizeFeedbackQueryTest, NanBoundIsRejected) {
  Box domain = Box::Cube(2, 0.0, 10.0);
  Box query = RawBox({kNaN, 2.0}, {3.0, 4.0});
  RobustnessStats stats;
  EXPECT_FALSE(SanitizeFeedbackQuery(domain, query, &stats).has_value());
  EXPECT_EQ(stats.rejected_queries, 1u);
}

TEST(SanitizeFeedbackQueryTest, InfiniteBoundIsRejected) {
  Box domain = Box::Cube(2, 0.0, 10.0);
  Box query = RawBox({0.0, 2.0}, {kInf, 4.0});
  RobustnessStats stats;
  EXPECT_FALSE(SanitizeFeedbackQuery(domain, query, &stats).has_value());
  EXPECT_EQ(stats.rejected_queries, 1u);
}

TEST(SanitizeFeedbackQueryTest, DimensionMismatchIsRejected) {
  Box domain = Box::Cube(3, 0.0, 10.0);
  Box query = Box::Cube(2, 1.0, 2.0);
  RobustnessStats stats;
  EXPECT_FALSE(SanitizeFeedbackQuery(domain, query, &stats).has_value());
  EXPECT_EQ(stats.rejected_queries, 1u);
}

TEST(SanitizeFeedbackQueryTest, EntirelyOutsideDomainIsRejected) {
  // Clamping would collapse the box to zero volume at the domain edge.
  Box domain = Box::Cube(2, 0.0, 10.0);
  Box query({20.0, 20.0}, {30.0, 30.0});
  RobustnessStats stats;
  EXPECT_FALSE(SanitizeFeedbackQuery(domain, query, &stats).has_value());
  EXPECT_EQ(stats.rejected_queries, 1u);
}

TEST(IsEstimableQueryTest, AcceptsCleanRejectsMalformed) {
  Box domain = Box::Cube(2, 0.0, 10.0);
  EXPECT_TRUE(IsEstimableQuery(domain, Box::Cube(2, 1.0, 2.0)));
  EXPECT_FALSE(IsEstimableQuery(domain, Box::Cube(3, 1.0, 2.0)));
  EXPECT_FALSE(IsEstimableQuery(domain, RawBox({kNaN, 0.0}, {1.0, 1.0})));
  EXPECT_FALSE(IsEstimableQuery(domain, RawBox({2.0, 0.0}, {1.0, 1.0})));
}

// A fixed-answer oracle for unit-testing the sanitizer.
class ConstOracle : public CardinalityOracle {
 public:
  explicit ConstOracle(double value) : value_(value) {}
  double Count(const Box&) const override { return value_; }

 private:
  double value_;
};

TEST(SanitizingOracleTest, ClampsNonFiniteAndNegative) {
  RobustnessStats stats;
  Box q = Box::Cube(1, 0.0, 1.0);

  ConstOracle nan_oracle(kNaN);
  EXPECT_DOUBLE_EQ(SanitizingOracle(nan_oracle, &stats).Count(q), 0.0);
  ConstOracle neg_oracle(-12.0);
  EXPECT_DOUBLE_EQ(SanitizingOracle(neg_oracle, &stats).Count(q), 0.0);
  ConstOracle inf_oracle(kInf);
  EXPECT_DOUBLE_EQ(SanitizingOracle(inf_oracle, &stats).Count(q), 0.0);
  EXPECT_EQ(stats.clamped_feedback, 3u);

  ConstOracle fine_oracle(42.0);
  EXPECT_DOUBLE_EQ(SanitizingOracle(fine_oracle, &stats).Count(q), 42.0);
  EXPECT_EQ(stats.clamped_feedback, 3u);
}

// ---------------------------------------------------------------------------
// Injector units
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, ZeroRateIsIdentity) {
  GeneratedData g = SmallCross();
  FaultConfig faults;  // rate = 0.
  Dataset corrupted = CorruptDataset(g.data, g.domain, faults);
  ASSERT_EQ(corrupted.size(), g.data.size());
  EXPECT_TRUE(corrupted.Validate().ok());

  WorkloadConfig wc;
  wc.num_queries = 50;
  Workload w = MakeWorkload(g.domain, wc);
  Workload cw = CorruptWorkload(w, g.domain, faults);
  ASSERT_EQ(cw.size(), w.size());
  for (size_t i = 0; i < w.size(); ++i) EXPECT_EQ(cw[i], w[i]);
}

TEST(FaultInjectionTest, CorruptDatasetIsDeterministicAndRepairable) {
  GeneratedData g = SmallCross();
  FaultConfig faults;
  faults.rate = 0.2;
  faults.seed = 17;
  Dataset a = CorruptDataset(g.data, g.domain, faults);
  Dataset b = CorruptDataset(g.data, g.domain, faults);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t d = 0; d < a.dim(); ++d) {
      double va = a.value(i, d);
      double vb = b.value(i, d);
      EXPECT_TRUE(va == vb || (std::isnan(va) && std::isnan(vb)));
    }
  }
  // Corruption actually happened and Validate sees it.
  EXPECT_FALSE(a.Validate().ok());
  size_t dropped = 0;
  Dataset repaired = DropNonFiniteTuples(a, &dropped);
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(repaired.size() + dropped, a.size());
  EXPECT_TRUE(repaired.Validate().ok());
}

TEST(FaultInjectionTest, CorruptWorkloadProducesMalformedBoxes) {
  GeneratedData g = SmallCross();
  WorkloadConfig wc;
  wc.num_queries = 200;
  Workload w = MakeWorkload(g.domain, wc);
  FaultConfig faults;
  faults.rate = 0.5;
  Workload cw = CorruptWorkload(w, g.domain, faults);
  ASSERT_EQ(cw.size(), w.size());
  size_t malformed = 0;
  for (const Box& q : cw) {
    if (!IsEstimableQuery(g.domain, q) || !g.domain.Contains(q)) ++malformed;
  }
  // At rate 0.5 over 200 queries, a handful must be corrupted.
  EXPECT_GT(malformed, 20u);
  // Determinism: the same config corrupts the same queries.
  Workload cw2 = CorruptWorkload(w, g.domain, faults);
  for (size_t i = 0; i < cw.size(); ++i) {
    for (size_t d = 0; d < cw[i].dim(); ++d) {
      EXPECT_TRUE(cw[i].lo(d) == cw2[i].lo(d) ||
                  (std::isnan(cw[i].lo(d)) && std::isnan(cw2[i].lo(d))));
    }
  }
}

TEST(FaultInjectionTest, FaultyOracleCorruptsAtRateOne) {
  ConstOracle truth(100.0);
  FaultConfig faults;
  faults.rate = 1.0;
  FaultyOracle oracle(truth, faults);
  Box q = Box::Cube(1, 0.0, 1.0);
  size_t wrong = 0;
  for (int i = 0; i < 40; ++i) {
    double c = oracle.Count(q);
    if (!(c == 100.0)) ++wrong;
  }
  EXPECT_EQ(oracle.faults_injected(), 40u);
  // Noise and staleness can coincidentally echo the truth; most can't.
  EXPECT_GT(wrong, 20u);
}

// ---------------------------------------------------------------------------
// Survival: each self-tuning histogram trained under injected faults
// ---------------------------------------------------------------------------

struct HistogramCase {
  const char* name;
  std::unique_ptr<Histogram> hist;
};

std::vector<HistogramCase> MakeHistograms(const Box& domain, double tuples) {
  std::vector<HistogramCase> cases;
  STHolesConfig sc;
  sc.max_buckets = 60;
  cases.push_back({"stholes", std::make_unique<STHoles>(domain, tuples, sc)});
  IsomerConfig ic;
  ic.max_buckets = 60;
  cases.push_back(
      {"isomer", std::make_unique<IsomerHistogram>(domain, tuples, ic)});
  STGridConfig gc;
  gc.cells_per_dim = 6;
  cases.push_back(
      {"stgrid", std::make_unique<STGridHistogram>(domain, tuples, gc)});
  return cases;
}

TEST(RobustnessSurvivalTest, HistogramsSurviveCorruptedFeedbackLoop) {
  GeneratedData g = SmallCross();
  Executor executor(g.data);

  WorkloadConfig wc;
  wc.num_queries = 150;
  Workload clean = MakeWorkload(g.domain, wc);

  FaultConfig faults;
  faults.rate = 0.25;  // Much harsher than the 5% acceptance bar.
  Workload corrupted = CorruptWorkload(clean, g.domain, faults);
  FaultyOracle faulty(executor, faults);

  double tuples = static_cast<double>(g.data.size());
  for (HistogramCase& c : MakeHistograms(g.domain, tuples)) {
    SCOPED_TRACE(c.name);
    for (const Box& q : corrupted) {
      c.hist->Refine(q, faulty);
      double est = c.hist->Estimate(q);
      EXPECT_TRUE(std::isfinite(est)) << "estimate diverged";
      EXPECT_GE(est, 0.0);
    }
    // Estimates on clean queries stay finite and non-negative too.
    for (const Box& q : clean) {
      double est = c.hist->Estimate(q);
      EXPECT_TRUE(std::isfinite(est));
      EXPECT_GE(est, 0.0);
    }
    // The degradation was accounted for, not silent.
    EXPECT_GT(c.hist->robustness().total(), 0u);
  }
}

TEST(RobustnessSurvivalTest, MalformedEstimateQueriesReturnZero) {
  GeneratedData g = SmallCross();
  double tuples = static_cast<double>(g.data.size());
  for (HistogramCase& c : MakeHistograms(g.domain, tuples)) {
    SCOPED_TRACE(c.name);
    size_t dim = g.domain.dim();
    EXPECT_DOUBLE_EQ(c.hist->Estimate(Box::Cube(dim + 1, 0.0, 1.0)), 0.0);
    std::vector<double> lo(dim, 0.5), hi(dim, 1.0);
    lo[0] = kNaN;
    EXPECT_DOUBLE_EQ(c.hist->Estimate(RawBox(lo, hi)), 0.0);
    lo[0] = 2.0;
    hi[0] = 1.0;  // Inverted.
    EXPECT_DOUBLE_EQ(c.hist->Estimate(RawBox(lo, hi)), 0.0);
    EXPECT_EQ(c.hist->robustness().rejected_queries, 3u);
  }
}

TEST(RobustnessSurvivalTest, BudgetExhaustionUnderFaultsKeepsBucketCap) {
  GeneratedData g = SmallCross();
  Executor executor(g.data);
  STHolesConfig sc;
  sc.max_buckets = 10;  // Tiny budget forces constant merging.
  STHoles hist(g.domain, static_cast<double>(g.data.size()), sc);

  WorkloadConfig wc;
  wc.num_queries = 200;
  FaultConfig faults;
  faults.rate = 0.3;
  Workload corrupted = CorruptWorkload(MakeWorkload(g.domain, wc), g.domain,
                                       faults);
  FaultyOracle faulty(executor, faults);
  for (const Box& q : corrupted) hist.Refine(q, faulty);
  EXPECT_LE(hist.bucket_count(), sc.max_buckets + 1);  // Budget + root.
  EXPECT_TRUE(std::isfinite(hist.Estimate(g.domain)));
}

// ---------------------------------------------------------------------------
// End-to-end: accuracy under 5% faults stays within 2x the clean baseline
// ---------------------------------------------------------------------------

TEST(RobustnessEndToEndTest, FivePercentFaultsKeepNaeWithinTwiceClean) {
  Experiment experiment(SmallCross());

  ExperimentConfig config;
  config.buckets = 60;
  config.train_queries = 200;
  config.sim_queries = 200;

  ExperimentResult clean = experiment.Run(config);
  EXPECT_EQ(clean.robustness.total(), 0u);
  EXPECT_EQ(clean.faults_injected, 0u);

  config.faults.rate = 0.05;
  ExperimentResult faulty = experiment.Run(config);

  EXPECT_GT(faulty.faults_injected, 0u);
  EXPECT_GT(faulty.robustness.total(), 0u);
  EXPECT_TRUE(std::isfinite(faulty.nae));
  // The acceptance bar from the issue: bounded degradation. Guard the
  // degenerate clean == 0 case with a small absolute floor.
  EXPECT_LE(faulty.nae, 2.0 * clean.nae + 0.05)
      << "clean NAE " << clean.nae << " vs faulty NAE " << faulty.nae;
}

}  // namespace
}  // namespace sthist

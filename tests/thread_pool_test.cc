#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace sthist {
namespace {

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(DefaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not deadlock.
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 20);
  }
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 8u}) {
    std::vector<int> visits(1000, 0);
    ParallelFor(visits.size(), threads,
                [&](size_t i) { visits[i] += 1; });
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 1000)
        << "threads=" << threads;
    for (int v : visits) EXPECT_EQ(v, 1);
  }
}

TEST(ParallelForTest, ZeroAndOneElementLoops) {
  int calls = 0;
  ParallelFor(size_t{0}, 8, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(size_t{1}, 8, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, SlotWritesAreDeterministic) {
  // Index-owned slot writes must produce the same output at any thread
  // count — the property RunSweep's aggregation relies on.
  auto run = [](size_t threads) {
    std::vector<size_t> out(500);
    ParallelFor(out.size(), threads, [&](size_t i) { out[i] = i * i; });
    return out;
  };
  std::vector<size_t> serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(ParallelForTest, PoolOverloadSharesOnePool) {
  ThreadPool pool(4);
  std::atomic<size_t> sum{0};
  ParallelFor(&pool, 100, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
  // The pool survives for another loop.
  std::atomic<size_t> count{0};
  ParallelFor(&pool, 10, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10u);
}

TEST(ParallelForTest, PropagatesFirstException) {
  EXPECT_THROW(
      ParallelFor(64, 4,
                  [&](size_t i) {
                    if (i == 13) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

}  // namespace
}  // namespace sthist

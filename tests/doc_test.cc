#include "clustering/doc.h"

#include <gtest/gtest.h>

#include "clustering/clique.h"

#include <cmath>
#include <set>

#include "core/rng.h"
#include "data/generators.h"

namespace sthist {
namespace {

TEST(DocTest, RecoversCrossBands) {
  CrossConfig config;
  config.tuples_per_cluster = 5000;
  config.noise_tuples = 1000;
  GeneratedData g = MakeCross(config);

  DocConfig dc;
  dc.alpha = 0.05;
  DocClusterer doc(dc);
  std::vector<SubspaceCluster> clusters = doc.Cluster(g.data, g.domain);

  ASSERT_GE(clusters.size(), 2u);
  std::set<size_t> band_dims;
  for (size_t i = 0; i < 2; ++i) {
    ASSERT_EQ(clusters[i].relevant_dims.size(), 1u);
    band_dims.insert(clusters[i].relevant_dims[0]);
  }
  EXPECT_EQ(band_dims, (std::set<size_t>{0, 1}));
}

TEST(DocTest, AlphaIsRespected) {
  GaussConfig config;
  config.cluster_tuples = 6000;
  config.noise_tuples = 600;
  GeneratedData g = MakeGauss(config);
  DocConfig dc;
  dc.alpha = 0.08;
  DocClusterer doc(dc);
  const double min_size = dc.alpha * static_cast<double>(g.data.size());
  for (const SubspaceCluster& c : doc.Cluster(g.data, g.domain)) {
    EXPECT_GE(static_cast<double>(c.members.size()), min_size);
  }
}

TEST(DocTest, MembersAreDisjoint) {
  GaussConfig config;
  config.cluster_tuples = 6000;
  config.noise_tuples = 600;
  GeneratedData g = MakeGauss(config);
  DocClusterer doc((DocConfig()));
  std::set<size_t> seen;
  for (const SubspaceCluster& c : doc.Cluster(g.data, g.domain)) {
    for (size_t row : c.members) {
      EXPECT_TRUE(seen.insert(row).second);
    }
  }
}

TEST(DocTest, DeterministicForSeed) {
  CrossConfig config;
  config.tuples_per_cluster = 2000;
  config.noise_tuples = 400;
  GeneratedData g = MakeCross(config);
  DocClusterer doc((DocConfig()));
  std::vector<SubspaceCluster> a = doc.Cluster(g.data, g.domain);
  std::vector<SubspaceCluster> b = doc.Cluster(g.data, g.domain);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].relevant_dims, b[i].relevant_dims);
    EXPECT_EQ(a[i].members.size(), b[i].members.size());
  }
}

TEST(DocTest, ScoreMatchesMuFormula) {
  GaussConfig config;
  config.cluster_tuples = 4000;
  config.noise_tuples = 400;
  GeneratedData g = MakeGauss(config);
  DocConfig dc;
  dc.beta = 0.5;
  DocClusterer doc(dc);
  for (const SubspaceCluster& c : doc.Cluster(g.data, g.domain)) {
    double mu = static_cast<double>(c.members.size()) *
                std::pow(2.0, static_cast<double>(c.relevant_dims.size()));
    EXPECT_DOUBLE_EQ(c.score, mu);
  }
}

TEST(ClustererInterfaceTest, AllThreeImplementationsRun) {
  CrossConfig config;
  config.tuples_per_cluster = 2000;
  config.noise_tuples = 400;
  GeneratedData g = MakeCross(config);

  MineClusConfig mc;
  mc.alpha = 0.05;
  std::vector<std::unique_ptr<SubspaceClusterer>> clusterers;
  clusterers.push_back(std::make_unique<MineClusClusterer>(mc));
  clusterers.push_back(std::make_unique<CliqueClusterer>(CliqueConfig{}));
  clusterers.push_back(std::make_unique<DocClusterer>(DocConfig{}));

  std::set<std::string> names;
  for (const auto& clusterer : clusterers) {
    names.insert(clusterer->name());
    std::vector<SubspaceCluster> clusters =
        clusterer->Cluster(g.data, g.domain);
    EXPECT_FALSE(clusters.empty()) << clusterer->name();
  }
  EXPECT_EQ(names, (std::set<std::string>{"mineclus", "clique", "doc"}));
}

}  // namespace
}  // namespace sthist

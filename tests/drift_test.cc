// Determinism and structure battery for the drifting workload generators
// (workload/drift.h). Drift schedules feed the serving layer's stagnation
// tests and the CI drift smoke, so the load-bearing property is replayability:
// equal configs must produce bitwise-identical schedules (data and queries)
// regardless of caller threading, and the golden-trajectory hashes pin the
// exact streams so an accidental generator change cannot slip through as
// "still deterministic, just different".

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/box.h"
#include "workload/drift.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

// FNV-1a over the exact bit patterns of a double stream: collision-resistant
// enough to pin a trajectory, and any representational change (not just a
// value change) moves it.
class BitHasher {
 public:
  void Fold(double v) {
    uint64_t bits = std::bit_cast<uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (bits >> (8 * i)) & 0xFF;
      hash_ *= 0x100000001b3ull;
    }
  }
  void Fold(const Box& box) {
    for (size_t d = 0; d < box.dim(); ++d) {
      Fold(box.lo(d));
      Fold(box.hi(d));
    }
  }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ull;
};

DriftConfig BaseConfig(DriftScenario scenario) {
  DriftConfig dc;
  dc.scenario = scenario;
  dc.phases = 3;
  dc.seed = 17;
  dc.dim = 2;
  dc.tuples = 2200;  // Small: the battery builds many schedules.
  return dc;
}

WorkloadConfig BaseWorkload() {
  WorkloadConfig wc;
  wc.num_queries = 40;
  wc.volume_fraction = 0.01;
  return wc;
}

const DriftScenario kAllScenarios[] = {
    DriftScenario::kMovingCross, DriftScenario::kClusterChurn,
    DriftScenario::kHotspot, DriftScenario::kAdversarial};

bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

void ExpectSchedulesBitwiseEqual(const DriftSchedule& a,
                                 const DriftSchedule& b) {
  ASSERT_EQ(a.phase_count(), b.phase_count());
  ASSERT_EQ(a.domain(), b.domain());
  for (size_t p = 0; p < a.phase_count(); ++p) {
    const DriftPhase& pa = a.phase(p);
    const DriftPhase& pb = b.phase(p);
    ASSERT_EQ(pa.data.data.size(), pb.data.data.size()) << "phase " << p;
    ASSERT_EQ(pa.data.data.dim(), pb.data.data.dim());
    for (size_t i = 0; i < pa.data.data.size(); ++i) {
      for (size_t d = 0; d < pa.data.data.dim(); ++d) {
        ASSERT_TRUE(
            BitEqual(pa.data.data.value(i, d), pb.data.data.value(i, d)))
            << "phase " << p << " tuple " << i << " dim " << d;
      }
    }
    ASSERT_EQ(pa.queries.size(), pb.queries.size()) << "phase " << p;
    for (size_t q = 0; q < pa.queries.size(); ++q) {
      ASSERT_EQ(pa.queries[q], pb.queries[q])
          << "phase " << p << " query " << q;
    }
  }
}

TEST(DriftTest, ParseRoundTripsEveryScenarioName) {
  for (DriftScenario s : kAllScenarios) {
    StatusOr<DriftScenario> parsed = ParseDriftScenario(DriftScenarioName(s));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(ParseDriftScenario("no-such-drift").ok());
  EXPECT_FALSE(ParseDriftScenario("").ok());
}

TEST(DriftTest, ValidateRejectsBadConfigs) {
  DriftConfig dc = BaseConfig(DriftScenario::kMovingCross);
  EXPECT_TRUE(Validate(dc).ok());

  DriftConfig bad = dc;
  bad.phases = 0;
  EXPECT_FALSE(Validate(bad).ok());
  bad = dc;
  bad.dim = 1;
  EXPECT_FALSE(Validate(bad).ok());
  bad = dc;
  bad.tuples = 10;
  EXPECT_FALSE(Validate(bad).ok());
  bad = dc;
  bad.move_span = 1.0;
  EXPECT_FALSE(Validate(bad).ok());
  bad = dc;
  bad.churn_active = bad.churn_pool + 1;
  EXPECT_FALSE(Validate(bad).ok());
  bad = dc;
  bad.hotspot_volume_fraction = 0.0;
  EXPECT_FALSE(Validate(bad).ok());
}

// The core replayability contract: same config -> bitwise-identical phases.
TEST(DriftTest, RegenerationIsBitwiseIdentical) {
  for (DriftScenario s : kAllScenarios) {
    DriftConfig dc = BaseConfig(s);
    StatusOr<DriftSchedule> a = MakeDriftSchedule(dc, BaseWorkload());
    StatusOr<DriftSchedule> b = MakeDriftSchedule(dc, BaseWorkload());
    ASSERT_TRUE(a.ok()) << DriftScenarioName(s);
    ASSERT_TRUE(b.ok()) << DriftScenarioName(s);
    ExpectSchedulesBitwiseEqual(*a, *b);
  }
}

// Generation must not depend on ambient threading: schedules built on four
// racing threads equal the serially built one.
TEST(DriftTest, ConcurrentGenerationEqualsSerial) {
  DriftConfig dc = BaseConfig(DriftScenario::kMovingCross);
  StatusOr<DriftSchedule> serial = MakeDriftSchedule(dc, BaseWorkload());
  ASSERT_TRUE(serial.ok());

  constexpr size_t kThreads = 4;
  std::vector<StatusOr<DriftSchedule>> results;
  results.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    results.push_back(Status::Unavailable("not built yet"));
  }
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { results[t] = MakeDriftSchedule(dc, BaseWorkload()); });
  }
  for (std::thread& t : threads) t.join();
  for (size_t t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(results[t].ok());
    ExpectSchedulesBitwiseEqual(*serial, *results[t]);
  }
}

TEST(DriftTest, SeedsAndPhasesChangeTheStream) {
  DriftConfig dc = BaseConfig(DriftScenario::kMovingCross);
  StatusOr<DriftSchedule> base = MakeDriftSchedule(dc, BaseWorkload());
  ASSERT_TRUE(base.ok());

  DriftConfig reseeded = dc;
  reseeded.seed = dc.seed + 1;
  StatusOr<DriftSchedule> other = MakeDriftSchedule(reseeded, BaseWorkload());
  ASSERT_TRUE(other.ok());
  // Some query in phase 0 must differ — seed sensitivity.
  bool differs = false;
  for (size_t q = 0; q < base->phase(0).queries.size() && !differs; ++q) {
    differs = !(base->phase(0).queries[q] == other->phase(0).queries[q]);
  }
  EXPECT_TRUE(differs) << "reseeding left the query stream unchanged";

  // Distinct phases of one schedule must not repeat each other's queries.
  bool phases_differ = false;
  for (size_t q = 0; q < base->phase(0).queries.size() && !phases_differ;
       ++q) {
    phases_differ = !(base->phase(0).queries[q] == base->phase(1).queries[q]);
  }
  EXPECT_TRUE(phases_differ) << "phases replay identical query streams";
}

// Scenario structure: the properties each generator exists to provide.

TEST(DriftTest, MovingCrossActuallyMovesTheData) {
  DriftConfig dc = BaseConfig(DriftScenario::kMovingCross);
  StatusOr<DriftSchedule> sched = MakeDriftSchedule(dc, BaseWorkload());
  ASSERT_TRUE(sched.ok());
  // Same tuple count per phase, shifted positions: the mean of dimension 0
  // must strictly increase with the phase (centers travel lo -> hi).
  double prev_mean = -1e300;
  for (size_t p = 0; p < sched->phase_count(); ++p) {
    const Dataset& data = sched->phase(p).data.data;
    ASSERT_GT(data.size(), 0u);
    double mean = 0.0;
    for (size_t i = 0; i < data.size(); ++i) mean += data.value(i, 0);
    mean /= static_cast<double>(data.size());
    EXPECT_GT(mean, prev_mean) << "phase " << p << " did not move";
    prev_mean = mean;
  }
}

TEST(DriftTest, HotspotKeepsDataFixedAndConcentratesQueries) {
  DriftConfig dc = BaseConfig(DriftScenario::kHotspot);
  StatusOr<DriftSchedule> sched = MakeDriftSchedule(dc, BaseWorkload());
  ASSERT_TRUE(sched.ok());
  const Dataset& first = sched->phase(0).data.data;
  for (size_t p = 1; p < sched->phase_count(); ++p) {
    const Dataset& data = sched->phase(p).data.data;
    ASSERT_EQ(data.size(), first.size());
    for (size_t i = 0; i < data.size(); ++i) {
      for (size_t d = 0; d < data.dim(); ++d) {
        ASSERT_TRUE(BitEqual(data.value(i, d), first.value(i, d)))
            << "hotspot drift must not move the data";
      }
    }
  }
  // Each phase's queries cluster inside a hotspot far smaller than the
  // domain: their joint bounding box has a small volume fraction.
  for (size_t p = 0; p < sched->phase_count(); ++p) {
    const Workload& queries = sched->phase(p).queries;
    ASSERT_FALSE(queries.empty());
    Box hull = queries[0];
    for (const Box& q : queries) hull.ExtendToContain(q);
    EXPECT_LT(hull.Volume() / sched->domain().Volume(), 0.5)
        << "phase " << p << " queries are not concentrated";
  }
}

TEST(DriftTest, AdversarialReordersAFixedQuerySet) {
  DriftConfig dc = BaseConfig(DriftScenario::kAdversarial);
  StatusOr<DriftSchedule> sched = MakeDriftSchedule(dc, BaseWorkload());
  ASSERT_TRUE(sched.ok());
  ASSERT_GE(sched->phase_count(), 2u);
  const Workload& a = sched->phase(0).queries;
  // Order within a phase follows the phase's sweep: phase 0 ascends on
  // dimension 0's lower bound, phase 1 descends on dimension 1's.
  for (size_t q = 1; q < a.size(); ++q) {
    EXPECT_LE(a[q - 1].lo(0), a[q].lo(0)) << "phase 0 must ascend";
  }
  const Workload& b = sched->phase(1).queries;
  for (size_t q = 1; q < b.size(); ++q) {
    EXPECT_GE(b[q - 1].lo(1), b[q].lo(1)) << "phase 1 must descend";
  }
}

TEST(DriftTest, ChurnPhasesShareTheirDomain) {
  DriftConfig dc = BaseConfig(DriftScenario::kClusterChurn);
  StatusOr<DriftSchedule> sched = MakeDriftSchedule(dc, BaseWorkload());
  ASSERT_TRUE(sched.ok());
  for (size_t p = 0; p < sched->phase_count(); ++p) {
    const Dataset& data = sched->phase(p).data.data;
    ASSERT_GT(data.size(), 0u);
    EXPECT_TRUE(sched->domain().Contains(data.Bounds()))
        << "phase " << p << " escapes the shared domain";
    EXPECT_FALSE(sched->phase(p).data.truth.empty())
        << "churn phases carry planted truth";
  }
}

TEST(DriftTest, PhasedOracleAnswersFromTheActivePhase) {
  DriftConfig dc = BaseConfig(DriftScenario::kMovingCross);
  StatusOr<DriftSchedule> sched = MakeDriftSchedule(dc, BaseWorkload());
  ASSERT_TRUE(sched.ok());
  PhasedOracle oracle(*sched);
  ASSERT_EQ(oracle.phase_count(), sched->phase_count());
  for (size_t p = 0; p < sched->phase_count(); ++p) {
    oracle.SetPhase(p);
    EXPECT_EQ(oracle.phase(), p);
    Executor reference(sched->phase(p).data.data);
    for (const Box& q : sched->phase(p).queries) {
      ASSERT_TRUE(BitEqual(oracle.Count(q), reference.Count(q)))
          << "phase " << p << " count diverged from a fresh executor";
    }
    // The full domain returns the phase's tuple count.
    EXPECT_DOUBLE_EQ(oracle.Count(sched->domain()),
                     static_cast<double>(sched->phase(p).data.data.size()));
  }
}

// Golden trajectories: FNV-1a over the bit patterns of every query box of
// each phase, chained across phases. These constants pin the exact streams
// the CI drift smoke and the serving tests replay; regenerate them
// deliberately (print the actual on failure) when the generator is
// intentionally changed.
TEST(DriftTest, GoldenTrajectoriesPinTheQueryStreams) {
  struct Golden {
    DriftScenario scenario;
    uint64_t hash;
  };
  const Golden kGolden[] = {
      {DriftScenario::kMovingCross, 0xdf1134fa8234e3ceull},
      {DriftScenario::kClusterChurn, 0x91fbb00477efb98aull},
      {DriftScenario::kHotspot, 0x30464e5fff3eca48ull},
      {DriftScenario::kAdversarial, 0xcb67af2bed7bf24dull},
  };
  for (const Golden& golden : kGolden) {
    DriftConfig dc = BaseConfig(golden.scenario);
    StatusOr<DriftSchedule> sched = MakeDriftSchedule(dc, BaseWorkload());
    ASSERT_TRUE(sched.ok());
    BitHasher hasher;
    for (size_t p = 0; p < sched->phase_count(); ++p) {
      for (const Box& q : sched->phase(p).queries) hasher.Fold(q);
    }
    EXPECT_EQ(hasher.value(), golden.hash)
        << DriftScenarioName(golden.scenario) << " trajectory moved: 0x"
        << std::hex << hasher.value();
  }
}

// The data streams get the same pin (first 64 tuples per phase keeps the
// hash cheap while still covering every phase's generator path). Hotspot and
// adversarial share a hash by design: both serve the same fixed Cross data
// in every phase — only their query streams drift.
TEST(DriftTest, GoldenTrajectoriesPinTheDataStreams) {
  struct Golden {
    DriftScenario scenario;
    uint64_t hash;
  };
  const Golden kGolden[] = {
      {DriftScenario::kMovingCross, 0x73aa8f714e5a487bull},
      {DriftScenario::kClusterChurn, 0x0473e7d28c298d8aull},
      {DriftScenario::kHotspot, 0x12774c3b180b2209ull},
      {DriftScenario::kAdversarial, 0x12774c3b180b2209ull},
  };
  for (const Golden& golden : kGolden) {
    DriftConfig dc = BaseConfig(golden.scenario);
    StatusOr<DriftSchedule> sched = MakeDriftSchedule(dc, BaseWorkload());
    ASSERT_TRUE(sched.ok());
    BitHasher hasher;
    for (size_t p = 0; p < sched->phase_count(); ++p) {
      const Dataset& data = sched->phase(p).data.data;
      const size_t n = std::min<size_t>(data.size(), 64);
      for (size_t i = 0; i < n; ++i) {
        for (size_t d = 0; d < data.dim(); ++d) hasher.Fold(data.value(i, d));
      }
    }
    EXPECT_EQ(hasher.value(), golden.hash)
        << DriftScenarioName(golden.scenario) << " data stream moved: 0x"
        << std::hex << hasher.value();
  }
}

}  // namespace
}  // namespace sthist

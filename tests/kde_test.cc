// KDE estimator battery (DESIGN.md §18): the shared Reservoir<T> primitive
// is deterministic and bounded; a trained KdeHistogram's accuracy improves
// with feedback and beats the trivial baseline; online bandwidth adaptation
// beats the fixed Scott's-rule baseline on a drifting stream; the STHK
// snapshot fails closed on corruption; the estimator registry constructs
// every family by name and dispatches restores on the blob magic; and a
// KDE-backed HistogramService snapshot round-trips through the v2 service
// container bit-exactly.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/box.h"
#include "core/reservoir.h"
#include "core/status.h"
#include "data/generators.h"
#include "histogram/kde.h"
#include "histogram/registry.h"
#include "histogram/stholes.h"
#include "histogram/trivial.h"
#include "serve/histogram_service.h"
#include "serve/snapshot_io.h"
#include "workload/drift.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

// ---------------------------------------------------------------------------
// Reservoir<T>

TEST(ReservoirTest, BelowCapacityKeepsEveryItemInOrder) {
  Reservoir<int> r(8, /*seed=*/1);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(r.Offer(i), static_cast<size_t>(i));
  }
  EXPECT_EQ(r.size(), 8u);
  EXPECT_EQ(r.stream_length(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(r.items()[i], i);
}

TEST(ReservoirTest, SameSeedSameStreamSameSample) {
  Reservoir<int> a(16, /*seed=*/42);
  Reservoir<int> b(16, /*seed=*/42);
  Reservoir<int> c(16, /*seed=*/43);
  bool c_diverged = false;
  for (int i = 0; i < 5000; ++i) {
    const size_t slot_a = a.Offer(i);
    EXPECT_EQ(slot_a, b.Offer(i));
    if (c.Offer(i) != slot_a) c_diverged = true;
  }
  EXPECT_EQ(a.items(), b.items());
  EXPECT_TRUE(c_diverged) << "different seeds must select different slots";
}

TEST(ReservoirTest, AgeHalveBoundsTheVirtualStream) {
  Reservoir<int> r(32, /*seed=*/7);
  for (int i = 0; i < 1000; ++i) r.Offer(i);
  EXPECT_EQ(r.stream_length(), 1000u);
  r.AgeHalve();
  EXPECT_EQ(r.stream_length(), 500u);
  // Halving can never drop the virtual stream below the held sample: the
  // acceptance probability capacity/stream stays <= 1.
  for (int i = 0; i < 6; ++i) r.AgeHalve();
  EXPECT_EQ(r.stream_length(), r.size());
  EXPECT_EQ(r.size(), 32u);
}

TEST(ReservoirTest, RestoreTruncatesToCapacityAndFloorsTheStream) {
  Reservoir<int> r(4, /*seed=*/3);
  r.Restore({1, 2, 3, 4, 5, 6}, /*stream_length=*/2);
  EXPECT_EQ(r.size(), 4u);  // Truncated to capacity.
  EXPECT_EQ(r.stream_length(), 4u) << "stream floors at the held sample";
}

// ---------------------------------------------------------------------------
// KdeHistogram accuracy

struct KdeRig {
  KdeRig() {
    CrossConfig config;
    config.tuples_per_cluster = 1500;
    config.noise_tuples = 300;
    config.seed = 11;
    g = MakeCross(config);
    executor = std::make_unique<Executor>(g.data);
  }

  Workload Queries(size_t n, uint64_t seed, double volume = 0.01) const {
    WorkloadConfig wc;
    wc.num_queries = n;
    wc.volume_fraction = volume;
    wc.seed = seed;
    return MakeWorkload(g.domain, wc);
  }

  double Mae(const Histogram& h, const Workload& probes) const {
    double sum = 0.0;
    for (const Box& q : probes) {
      sum += std::abs(h.Estimate(q) - executor->Count(q));
    }
    return sum / static_cast<double>(probes.size());
  }

  GeneratedData g{Dataset(1), Box(), {}};
  std::unique_ptr<Executor> executor;
};

// On a stationary workload the estimator learns: error over a held-out
// probe set shrinks as feedback accumulates, and the trained estimator
// beats the trivial uniform baseline (NAE < 1).
TEST(KdeTest, ErrorShrinksOnStationaryWorkload) {
  KdeRig rig;
  KdeConfig config;
  config.sample_capacity = 512;
  KdeHistogram h(rig.g.domain, static_cast<double>(rig.g.data.size()), config);

  const Workload probes = rig.Queries(100, 999);
  const Workload train = rig.Queries(600, 5);

  const double untrained_mae = rig.Mae(h, probes);
  for (size_t i = 0; i < 50; ++i) h.Refine(train[i], *rig.executor);
  const double early_mae = rig.Mae(h, probes);
  for (size_t i = 50; i < train.size(); ++i) h.Refine(train[i], *rig.executor);
  const double late_mae = rig.Mae(h, probes);

  EXPECT_LT(early_mae, untrained_mae);
  EXPECT_LT(late_mae, early_mae);

  TrivialHistogram trivial(rig.g.domain,
                           static_cast<double>(rig.g.data.size()));
  const double trivial_mae = rig.Mae(trivial, probes);
  ASSERT_GT(trivial_mae, 0.0);
  EXPECT_LT(late_mae / trivial_mae, 1.0)
      << "trained KDE must beat the uniform baseline";
}

// The committed adaptive-vs-fixed drift assertion (ISSUE 10 acceptance):
// on the cross-move drift stream, online bandwidth adaptation ends the run
// with a lower final-phase NAE than the fixed Scott's-rule baseline.
TEST(KdeTest, AdaptiveBandwidthBeatsFixedUnderCrossMoveDrift) {
  DriftConfig dc;
  dc.scenario = DriftScenario::kMovingCross;
  dc.phases = 4;
  dc.seed = 17;
  dc.dim = 2;
  dc.tuples = 12000;
  dc.move_span = 0.6;
  WorkloadConfig wc;
  wc.num_queries = 400;
  wc.volume_fraction = 0.01;
  StatusOr<DriftSchedule> schedule = MakeDriftSchedule(dc, wc);
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();

  const double total =
      static_cast<double>(schedule->phase(0).data.data.size());
  KdeConfig adaptive_config;
  adaptive_config.sample_capacity = 512;
  KdeConfig fixed_config = adaptive_config;
  fixed_config.adapt_bandwidth = false;
  KdeHistogram adaptive(schedule->domain(), total, adaptive_config);
  KdeHistogram fixed(schedule->domain(), total, fixed_config);

  PhasedOracle oracle(*schedule);
  for (size_t p = 0; p < schedule->phase_count(); ++p) {
    oracle.SetPhase(p);
    for (const Box& q : schedule->phase(p).queries) {
      adaptive.Refine(q, oracle);
      fixed.Refine(q, oracle);
    }
  }

  // Final-phase measurement with learning frozen, against the final phase's
  // ground truth, normalized by the trivial baseline (paper eq. 10).
  const size_t last = schedule->phase_count() - 1;
  oracle.SetPhase(last);
  const Workload& probes = schedule->phase(last).queries;
  TrivialHistogram trivial(schedule->domain(), total);
  double adaptive_mae = 0.0, fixed_mae = 0.0, trivial_mae = 0.0;
  for (const Box& q : probes) {
    const double actual = oracle.Count(q);
    adaptive_mae += std::abs(adaptive.Estimate(q) - actual);
    fixed_mae += std::abs(fixed.Estimate(q) - actual);
    trivial_mae += std::abs(trivial.Estimate(q) - actual);
  }
  ASSERT_GT(trivial_mae, 0.0);
  const double adaptive_nae = adaptive_mae / trivial_mae;
  const double fixed_nae = fixed_mae / trivial_mae;
  EXPECT_LT(adaptive_nae, fixed_nae)
      << "adaptation must beat the fixed-bandwidth baseline after drift";
  EXPECT_LT(adaptive_nae, 1.0) << "and the uniform baseline outright";
}

// Refinement is deterministic: two estimators fed the identical stream are
// bitwise-identical, including their serialized state.
TEST(KdeTest, RefinementIsDeterministic) {
  KdeRig rig;
  KdeConfig config;
  config.sample_capacity = 128;
  KdeHistogram a(rig.g.domain, static_cast<double>(rig.g.data.size()), config);
  KdeHistogram b(rig.g.domain, static_cast<double>(rig.g.data.size()), config);
  for (const Box& q : rig.Queries(300, 41)) {
    a.Refine(q, *rig.executor);
    b.Refine(q, *rig.executor);
  }
  EXPECT_EQ(a.SerializeBinary(), b.SerializeBinary());
  for (const Box& q : rig.Queries(50, 43)) {
    EXPECT_EQ(Bits(a.Estimate(q)), Bits(b.Estimate(q)));
  }
}

// Clone is a deep copy: it matches the source bitwise at clone time and is
// unaffected by the source refining onward.
TEST(KdeTest, CloneIsIndependent) {
  KdeRig rig;
  KdeConfig config;
  config.sample_capacity = 128;
  KdeHistogram h(rig.g.domain, static_cast<double>(rig.g.data.size()), config);
  Workload train = rig.Queries(200, 23);
  for (size_t i = 0; i < 100; ++i) h.Refine(train[i], *rig.executor);

  std::unique_ptr<Histogram> clone = h.Clone();
  const std::string frozen = clone->SerializeBinary();
  const Workload probes = rig.Queries(40, 29);
  for (const Box& q : probes) {
    EXPECT_EQ(Bits(clone->Estimate(q)), Bits(h.Estimate(q)));
  }
  for (size_t i = 100; i < train.size(); ++i) h.Refine(train[i], *rig.executor);
  EXPECT_EQ(clone->SerializeBinary(), frozen)
      << "refining the source must not disturb the clone";
}

// ---------------------------------------------------------------------------
// STHK fail-closed

TEST(KdeTest, SnapshotFailsClosedOnTruncationAndCorruption) {
  KdeRig rig;
  KdeConfig config;
  config.sample_capacity = 64;
  KdeHistogram h(rig.g.domain, static_cast<double>(rig.g.data.size()), config);
  for (const Box& q : rig.Queries(120, 19)) h.Refine(q, *rig.executor);
  const std::string blob = h.SerializeBinary();
  ASSERT_FALSE(blob.empty());

  // Every truncation point fails with a Status, never a crash or a
  // silently short histogram.
  for (size_t cut = 0; cut < blob.size(); cut += 3) {
    EXPECT_FALSE(
        KdeHistogram::DeserializeBinary(blob.substr(0, cut), config).ok())
        << "truncated at " << cut;
  }
  // Bit flips anywhere are caught (payload by the frame checksum, header
  // fields by their own validation).
  for (size_t pos = 0; pos < blob.size(); pos += 11) {
    std::string corrupt = blob;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    EXPECT_FALSE(KdeHistogram::DeserializeBinary(corrupt, config).ok())
        << "flipped byte " << pos;
  }
}

// ---------------------------------------------------------------------------
// Registry

TEST(RegistryTest, ConstructsEveryRegisteredNameAndEstimatesFinite) {
  KdeRig rig;
  HistogramConfig hc;
  hc.domain = rig.g.domain;
  hc.total_tuples = static_cast<double>(rig.g.data.size());
  hc.data = &rig.g.data;
  hc.buckets = 50;
  const Workload probes = rig.Queries(10, 31);
  ASSERT_FALSE(RegisteredNames().empty());
  for (const std::string& name : RegisteredNames()) {
    SCOPED_TRACE(name);
    StatusOr<std::unique_ptr<Histogram>> made = MakeHistogram(name, hc);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    for (const Box& q : probes) {
      const double est = (*made)->Estimate(q);
      EXPECT_TRUE(std::isfinite(est));
      EXPECT_GE(est, 0.0);
    }
  }
}

TEST(RegistryTest, UnknownNameIsNotFoundListingChoices) {
  HistogramConfig hc;
  hc.domain = Box({0.0, 0.0}, {1.0, 1.0});
  hc.total_tuples = 10.0;
  StatusOr<std::unique_ptr<Histogram>> made = MakeHistogram("nope", hc);
  ASSERT_FALSE(made.ok());
  EXPECT_EQ(made.status().code(), StatusCode::kNotFound);
  EXPECT_NE(made.status().message().find("stholes"), std::string::npos)
      << "the error must list the registered names";
}

TEST(RegistryTest, RestoreDispatchesOnBlobMagic) {
  KdeRig rig;
  const double total = static_cast<double>(rig.g.data.size());

  STHolesConfig sc;
  sc.max_buckets = 30;
  STHoles stholes(rig.g.domain, total, sc);
  KdeConfig kc;
  kc.sample_capacity = 64;
  KdeHistogram kde(rig.g.domain, total, kc);
  for (const Box& q : rig.Queries(100, 37)) {
    stholes.Refine(q, *rig.executor);
    kde.Refine(q, *rig.executor);
  }

  const std::string stholes_blob = stholes.SerializeBinary();
  const std::string kde_blob = kde.SerializeBinary();
  EXPECT_EQ(EstimatorNameForBlob(stholes_blob), "stholes");
  EXPECT_EQ(EstimatorNameForBlob(kde_blob), "kde");
  EXPECT_EQ(EstimatorNameForBlob("JUNKjunk"), "");

  HistogramConfig hc;
  hc.buckets = 64;
  const Workload probes = rig.Queries(40, 39);
  for (const std::string* blob : {&stholes_blob, &kde_blob}) {
    StatusOr<std::unique_ptr<Histogram>> restored =
        RestoreHistogram(*blob, hc);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    const Histogram& original =
        blob == &stholes_blob ? static_cast<const Histogram&>(stholes)
                              : static_cast<const Histogram&>(kde);
    for (const Box& q : probes) {
      EXPECT_EQ(Bits((*restored)->Estimate(q)), Bits(original.Estimate(q)));
    }
  }
  EXPECT_EQ(RestoreHistogram("JUNKjunkjunkjunkjunkjunk", hc).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// KDE-backed serving

// A KdeHistogram drives the full HistogramService snapshot cycle: the saved
// STHS container self-describes its estimator as "kde", and restoring the
// embedded blob through the registry reproduces the served snapshot
// bit-exactly.
TEST(KdeTest, ServiceSnapshotRoundTripsThroughRegistry) {
  KdeRig rig;
  KdeConfig config;
  config.sample_capacity = 128;
  auto hist = std::make_unique<KdeHistogram>(
      rig.g.domain, static_cast<double>(rig.g.data.size()), config);

  ServiceConfig sc;
  HistogramService service(std::move(hist), *rig.executor, sc);
  for (const Box& q : rig.Queries(200, 47)) {
    if (service.SubmitFeedback(q) == FeedbackOutcome::kQueueFull) {
      ASSERT_TRUE(service.Drain().ok());
      (void)service.SubmitFeedback(q);
    }
  }
  ASSERT_TRUE(service.Drain().ok());

  const std::string path = testing::TempDir() + "sthist_kde_service.snap";
  ASSERT_TRUE(service.SaveSnapshot(path).ok());
  StatusOr<std::string> bytes = snapshot_io::ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  std::remove(path.c_str());

  StatusOr<snapshot_io::ServiceSnapshot> snap =
      snapshot_io::DecodeServiceSnapshot(*bytes);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->estimator, "kde");

  HistogramConfig hc;
  hc.buckets = config.sample_capacity;
  StatusOr<std::unique_ptr<Histogram>> restored =
      RestoreHistogram(snap->histogram, hc);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  std::shared_ptr<const Histogram> live = service.snapshot();
  ASSERT_NE(live, nullptr);
  for (const Box& q : rig.Queries(60, 53)) {
    EXPECT_EQ(Bits((*restored)->Estimate(q)), Bits(live->Estimate(q)));
  }
  service.Stop();
}

}  // namespace
}  // namespace sthist

// Drift-recovery battery for the serving layer's stagnation detector,
// feedback reservoir, and hot-swap re-initialization (serve/stagnation.h,
// serve/histogram_service.h). The synchronous-rebuild tests hold the whole
// trigger -> rebuild -> swap -> recovery loop to run-twice bitwise equality;
// the background tests pin the liveness contract (reads and refinement never
// block on a rebuild) and the failure contract (a failed or faulted rebuild
// leaves the incumbent serving and increments swaps_aborted).

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/box.h"
#include "core/check.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "histogram/stholes.h"
#include "serve/histogram_service.h"
#include "serve/stagnation.h"
#include "workload/drift.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

// ---------------------------------------------------------------------------
// StagnationDetector unit tests.
// ---------------------------------------------------------------------------

StagnationConfig SmallDetector() {
  StagnationConfig config;
  config.window = 4;
  config.trigger_nae = 0.9;
  config.rearm_nae = 0.5;
  config.cooldown = 3;
  config.retrigger_backstop = 10;
  return config;
}

TEST(StagnationDetectorTest, ValidateRejectsBadKnobs) {
  EXPECT_TRUE(Validate(SmallDetector()).ok());
  StagnationConfig bad = SmallDetector();
  bad.window = 0;
  EXPECT_FALSE(Validate(bad).ok());
  bad = SmallDetector();
  bad.rearm_nae = bad.trigger_nae;  // Hysteresis requires rearm < trigger.
  EXPECT_FALSE(Validate(bad).ok());
  bad = SmallDetector();
  bad.retrigger_backstop = bad.cooldown;
  EXPECT_FALSE(Validate(bad).ok());
}

TEST(StagnationDetectorTest, NeverFiresBeforeTheWindowFills) {
  StagnationDetector detector(SmallDetector());
  EXPECT_TRUE(std::isnan(detector.RollingNae()));
  EXPECT_EQ(detector.state(), StagnationDetector::State::kWarmup);
  // Estimate off by 100 while the trivial control is exact: NAE is enormous
  // from the first observation, yet warmup must hold fire.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(detector.Observe(0.0, 100.0, 100.0)) << "observation " << i;
  }
  EXPECT_FALSE(detector.window_full());
  // The window-filling observation both arms and fires.
  EXPECT_TRUE(detector.Observe(0.0, 100.0, 100.0));
  EXPECT_EQ(detector.triggers(), 1u);
  EXPECT_EQ(detector.state(), StagnationDetector::State::kCooldown);
}

TEST(StagnationDetectorTest, GoodEstimatesNeverFire) {
  StagnationDetector detector(SmallDetector());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(detector.Observe(100.0, 50.0, 100.0));
  }
  EXPECT_EQ(detector.triggers(), 0u);
  EXPECT_EQ(detector.RollingNae(), 0.0);
  EXPECT_EQ(detector.state(), StagnationDetector::State::kArmed);
}

TEST(StagnationDetectorTest, NonFiniteObservationsAreSkipped) {
  StagnationDetector detector(SmallDetector());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(detector.Observe(nan, 100.0, 100.0));
  EXPECT_FALSE(detector.Observe(0.0, nan, 100.0));
  EXPECT_FALSE(detector.Observe(0.0, 100.0, nan));
  EXPECT_EQ(detector.observations(), 0u);
  EXPECT_TRUE(std::isnan(detector.RollingNae()));
}

TEST(StagnationDetectorTest, HysteresisHoldsUntilRecoveryThenRefires) {
  StagnationDetector detector(SmallDetector());
  for (int i = 0; i < 4; ++i) detector.Observe(0.0, 100.0, 100.0);
  ASSERT_EQ(detector.triggers(), 1u);

  // Still stagnated through the cooldown: no refire (rolling NAE stays above
  // rearm, and the backstop of 10 is not yet reached).
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(detector.Observe(0.0, 100.0, 100.0));
  }
  EXPECT_EQ(detector.triggers(), 1u);

  // Recovery: perfect estimates wash the window below rearm, re-arming the
  // detector after the cooldown...
  for (int i = 0; i < 6; ++i) detector.Observe(100.0, 50.0, 100.0);
  EXPECT_EQ(detector.state(), StagnationDetector::State::kArmed);
  // ...so renewed stagnation fires again once the window is bad enough.
  size_t before = detector.triggers();
  bool fired = false;
  for (int i = 0; i < 4 && !fired; ++i) {
    fired = detector.Observe(0.0, 100.0, 100.0);
  }
  EXPECT_TRUE(fired);
  EXPECT_EQ(detector.triggers(), before + 1);
}

TEST(StagnationDetectorTest, BackstopRearmsWithoutRecovery) {
  StagnationDetector detector(SmallDetector());
  for (int i = 0; i < 4; ++i) detector.Observe(0.0, 100.0, 100.0);
  ASSERT_EQ(detector.triggers(), 1u);
  // Permanently stagnated (a failed rebuild): the backstop must eventually
  // re-arm and refire rather than disabling detection forever.
  size_t extra = 0;
  while (detector.triggers() == 1 && extra < 50) {
    detector.Observe(0.0, 100.0, 100.0);
    ++extra;
  }
  EXPECT_EQ(detector.triggers(), 2u);
  EXPECT_EQ(extra, SmallDetector().retrigger_backstop);
}

TEST(StagnationDetectorTest, NoteSwapClearsTheWindowAndCoolsDown) {
  StagnationDetector detector(SmallDetector());
  for (int i = 0; i < 4; ++i) detector.Observe(0.0, 100.0, 100.0);
  detector.NoteSwap();
  EXPECT_TRUE(std::isnan(detector.RollingNae()));
  EXPECT_FALSE(detector.window_full());
  EXPECT_EQ(detector.state(), StagnationDetector::State::kCooldown);
  // The cleared window refills from post-swap observations only.
  detector.Observe(100.0, 50.0, 100.0);
  EXPECT_EQ(detector.RollingNae(), 0.0);
}

TEST(StagnationDetectorTest, EqualStreamsProduceEqualTriggerSequences) {
  StagnationConfig config = SmallDetector();
  StagnationDetector a(config);
  StagnationDetector b(config);
  uint64_t seed = 7;
  std::vector<bool> fires_a;
  std::vector<bool> fires_b;
  for (int i = 0; i < 500; ++i) {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    const double actual = static_cast<double>(seed % 1000);
    const double est = static_cast<double>((seed >> 10) % 1000);
    fires_a.push_back(a.Observe(est, 500.0, actual));
    fires_b.push_back(b.Observe(est, 500.0, actual));
  }
  EXPECT_EQ(fires_a, fires_b);
  EXPECT_TRUE(BitEqual(a.RollingNae(), b.RollingNae()));
}

// ---------------------------------------------------------------------------
// FeedbackReservoir unit tests.
// ---------------------------------------------------------------------------

ReservoirConfig SmallReservoir() {
  ReservoirConfig config;
  config.capacity = 64;
  config.max_points_per_feedback = 4;
  config.tuples_per_point = 10.0;
  config.age_interval = 100;
  config.seed = 4242;
  return config;
}

TEST(FeedbackReservoirTest, DeterministicForEqualStreams) {
  FeedbackReservoir a(2, SmallReservoir());
  FeedbackReservoir b(2, SmallReservoir());
  uint64_t seed = 3;
  for (int i = 0; i < 400; ++i) {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    const double lo = static_cast<double>(seed % 100);
    Box box({lo, lo * 0.5}, {lo + 5.0, lo * 0.5 + 5.0});
    const double actual = static_cast<double>((seed >> 8) % 200);
    a.Add(box, actual);
    b.Add(box, actual);
  }
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  Dataset da = a.ToDataset();
  Dataset db = b.ToDataset();
  for (size_t i = 0; i < da.size(); ++i) {
    for (size_t d = 0; d < da.dim(); ++d) {
      ASSERT_TRUE(BitEqual(da.value(i, d), db.value(i, d)))
          << "slot " << i << " dim " << d;
    }
  }
}

TEST(FeedbackReservoirTest, CapacityBoundsTheSample) {
  ReservoirConfig config = SmallReservoir();
  FeedbackReservoir reservoir(2, config);
  Box box = Box::Cube(2, 0.0, 10.0);
  for (int i = 0; i < 1000; ++i) reservoir.Add(box, 100.0);
  EXPECT_EQ(reservoir.size(), config.capacity);
  EXPECT_EQ(reservoir.feedbacks_seen(), 1000u);
}

TEST(FeedbackReservoirTest, SkipsFeedbackItCannotUse) {
  FeedbackReservoir reservoir(2, SmallReservoir());
  reservoir.Add(Box::Cube(3, 0.0, 1.0), 100.0);  // Wrong arity.
  reservoir.Add(Box::Cube(2, 0.0, 1.0), 0.0);    // Empty result.
  reservoir.Add(Box::Cube(2, 0.0, 1.0), -5.0);   // Negative count.
  reservoir.Add(Box::Cube(2, 0.0, 1.0),
                std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(reservoir.size(), 0u);
  EXPECT_EQ(reservoir.feedbacks_seen(), 0u);
}

TEST(FeedbackReservoirTest, CountWeightingScalesPointsPerFeedback) {
  ReservoirConfig config = SmallReservoir();  // 10 tuples per point, max 4.
  FeedbackReservoir reservoir(2, config);
  Box box = Box::Cube(2, 0.0, 1.0);
  reservoir.Add(box, 1.0);  // ceil(0.1) -> 1 point.
  EXPECT_EQ(reservoir.size(), 1u);
  reservoir.Add(box, 25.0);  // ceil(2.5) -> 3 points.
  EXPECT_EQ(reservoir.size(), 4u);
  reservoir.Add(box, 1e9);  // Clamped to max_points_per_feedback.
  EXPECT_EQ(reservoir.size(), 8u);
}

TEST(FeedbackReservoirTest, PointsStayInsideTheirFeedbackBox) {
  FeedbackReservoir reservoir(2, SmallReservoir());
  Box box({2.0, -3.0}, {4.5, -1.0});
  for (int i = 0; i < 200; ++i) reservoir.Add(box, 50.0);
  Dataset sample = reservoir.ToDataset();
  ASSERT_GT(sample.size(), 0u);
  for (size_t i = 0; i < sample.size(); ++i) {
    EXPECT_TRUE(box.ContainsPoint(sample.row(i))) << "slot " << i;
  }
}

TEST(FeedbackReservoirTest, ClearEmptiesTheSample) {
  FeedbackReservoir reservoir(2, SmallReservoir());
  reservoir.Add(Box::Cube(2, 0.0, 1.0), 100.0);
  ASSERT_GT(reservoir.size(), 0u);
  reservoir.Clear();
  EXPECT_EQ(reservoir.size(), 0u);
  reservoir.Add(Box::Cube(2, 0.0, 1.0), 100.0);
  EXPECT_GT(reservoir.size(), 0u);
}

// ---------------------------------------------------------------------------
// HistogramService re-initialization integration.
// ---------------------------------------------------------------------------

// One drifting serving scenario: a moving-Cross schedule with a single large
// jump between phase 0 (the histogram's training distribution) and phase 1
// (what it serves after the drift).
struct DriftSetup {
  DriftSchedule schedule;
  std::unique_ptr<PhasedOracle> oracle;
};

DriftSetup MakeDriftSetup() {
  DriftConfig dc;
  dc.scenario = DriftScenario::kMovingCross;
  dc.phases = 2;
  dc.seed = 17;
  dc.dim = 2;
  dc.tuples = 2200;
  dc.move_span = 0.5;  // One big jump: phase centers at -0.25 and +0.25.
  WorkloadConfig wc;
  wc.num_queries = 400;
  wc.volume_fraction = 0.01;
  StatusOr<DriftSchedule> schedule = MakeDriftSchedule(dc, wc);
  STHIST_CHECK(schedule.ok());
  DriftSetup setup{std::move(*schedule), nullptr};
  setup.oracle = std::make_unique<PhasedOracle>(setup.schedule);
  return setup;
}

// An STHoles trained on phase `p` of the schedule (plain refinement, no
// subspace init — the quality gap is what the rebuild closes).
std::unique_ptr<STHoles> TrainOnPhase(const DriftSetup& setup, size_t p,
                                      size_t buckets) {
  const DriftPhase& phase = setup.schedule.phase(p);
  Executor executor(phase.data.data);
  STHolesConfig config;
  config.max_buckets = buckets;
  auto hist = std::make_unique<STHoles>(
      setup.schedule.domain(), static_cast<double>(phase.data.data.size()),
      config);
  Train(hist.get(), phase.queries, executor);
  return hist;
}

ServiceConfig ReinitServiceConfig(const DriftSetup& setup) {
  ServiceConfig config;
  config.reinit.enabled = true;
  config.reinit.domain = setup.schedule.domain();
  config.reinit.background = false;  // Deterministic inline rebuilds.
  config.reinit.detector.window = 32;
  config.reinit.detector.trigger_nae = 0.5;
  config.reinit.detector.rearm_nae = 0.3;
  config.reinit.detector.cooldown = 40;
  config.reinit.detector.retrigger_backstop = 120;
  config.reinit.reservoir.capacity = 256;
  return config;
}

struct RunResult {
  ServiceStats stats;
  std::vector<double> final_estimates;
};

// Serves phase 1 through a service whose histogram was trained on phase 0,
// submitting each query's served estimate as feedback and draining per item
// so the loop is fully deterministic.
RunResult ServePhaseOne(const DriftSetup& setup, const ServiceConfig& config) {
  setup.oracle->SetPhase(0);
  HistogramService service(TrainOnPhase(setup, 0, 40), *setup.oracle, config);
  setup.oracle->SetPhase(1);
  const Workload& queries = setup.schedule.phase(1).queries;
  for (const Box& q : queries) {
    const double est = service.Estimate(q);
    // A drain-per-item single producer can never fill the queue.
    STHIST_CHECK(service.SubmitFeedback(q, est) == FeedbackOutcome::kAccepted);
    STHIST_CHECK(service.Drain().ok());
  }
  service.Stop();
  RunResult result;
  result.stats = service.stats();
  for (const Box& q : queries) {
    result.final_estimates.push_back(service.Estimate(q));
  }
  return result;
}

// The acceptance loop: drift degrades the served estimates past the trigger,
// the detector fires, the rebuild swaps in, and the post-swap rolling NAE
// falls back below the trigger threshold.
TEST(ReinitServiceTest, TriggerSwapAndRecoveryUnderDrift) {
  DriftSetup setup = MakeDriftSetup();
  ServiceConfig config = ReinitServiceConfig(setup);
  // Rebuild hook: a histogram trained on the drifted phase stands in for the
  // MineClus pipeline, so recovery depends only on the swap plumbing.
  std::unique_ptr<STHoles> reference = TrainOnPhase(setup, 1, 40);
  const STHoles* reference_raw = reference.get();
  config.reinit.rebuild_override = [reference_raw](const Dataset& sample,
                                                   double total) {
    EXPECT_GT(sample.size(), 0u) << "the reservoir must feed the rebuild";
    EXPECT_GT(total, 0.0);
    return reference_raw->Clone();
  };

  RunResult result = ServePhaseOne(setup, config);
  EXPECT_GE(result.stats.reinit_triggers, 1u);
  EXPECT_GE(result.stats.reinit_swaps_completed, 1u);
  EXPECT_EQ(result.stats.reinit_swaps_aborted, 0u);
  EXPECT_LT(result.stats.rolling_nae, config.reinit.detector.trigger_nae)
      << "post-swap serving quality must recover below the trigger";
  EXPECT_EQ(result.stats.feedback_applied, result.stats.feedback_accepted);

  // keep the reference alive through the run.
  (void)reference;
}

// Same loop, run twice: synchronous mode is bitwise deterministic end to end
// (trigger counts, swap counts, and every final estimate).
TEST(ReinitServiceTest, SynchronousModeIsRunTwiceDeterministic) {
  DriftSetup setup = MakeDriftSetup();
  ServiceConfig config = ReinitServiceConfig(setup);

  RunResult a = ServePhaseOne(setup, config);
  RunResult b = ServePhaseOne(setup, config);
  EXPECT_EQ(a.stats.reinit_triggers, b.stats.reinit_triggers);
  EXPECT_EQ(a.stats.reinit_swaps_completed, b.stats.reinit_swaps_completed);
  EXPECT_EQ(a.stats.reinit_swaps_aborted, b.stats.reinit_swaps_aborted);
  EXPECT_EQ(a.stats.feedback_applied, b.stats.feedback_applied);
  ASSERT_EQ(a.final_estimates.size(), b.final_estimates.size());
  for (size_t i = 0; i < a.final_estimates.size(); ++i) {
    EXPECT_TRUE(BitEqual(a.final_estimates[i], b.final_estimates[i]))
        << "estimate " << i << " diverged between identical runs";
  }
}

// The real rebuild path (reservoir -> MineClus -> initializer) completes a
// swap and leaves a servable histogram.
TEST(ReinitServiceTest, MineClusRebuildPathSwapsInAServableHistogram) {
  DriftSetup setup = MakeDriftSetup();
  ServiceConfig config = ReinitServiceConfig(setup);
  config.reinit.max_buckets = 40;
  config.reinit.reservoir.age_interval = 64;  // Wash out phase-0 sample fast.

  RunResult result = ServePhaseOne(setup, config);
  EXPECT_GE(result.stats.reinit_triggers, 1u);
  EXPECT_GE(result.stats.reinit_swaps_completed, 1u);
  EXPECT_EQ(result.stats.reinit_swaps_aborted, 0u);
  EXPECT_GT(result.stats.reservoir_size, 0u);
  for (double est : result.final_estimates) {
    EXPECT_TRUE(std::isfinite(est));
    EXPECT_GE(est, 0.0);
  }
}

// A rebuild that fails (override returns null) aborts the swap: the
// incumbent keeps serving, swaps_aborted increments, and feedback keeps
// applying afterwards.
TEST(ReinitServiceTest, FailedRebuildDegradesToTheIncumbent) {
  DriftSetup setup = MakeDriftSetup();
  ServiceConfig config = ReinitServiceConfig(setup);
  size_t rebuild_calls = 0;
  config.reinit.rebuild_override = [&rebuild_calls](const Dataset&, double) {
    ++rebuild_calls;
    return std::unique_ptr<Histogram>();
  };

  RunResult result = ServePhaseOne(setup, config);
  EXPECT_GE(rebuild_calls, 1u);
  EXPECT_GE(result.stats.reinit_triggers, 1u);
  EXPECT_EQ(result.stats.reinit_swaps_completed, 0u);
  EXPECT_GE(result.stats.reinit_swaps_aborted, 1u);
  EXPECT_EQ(result.stats.reinit_swaps_aborted, result.stats.reinit_triggers)
      << "every failed rebuild must be accounted as an abort";
  EXPECT_EQ(result.stats.feedback_applied, result.stats.feedback_accepted)
      << "refinement continues on the incumbent after an abort";
  for (double est : result.final_estimates) {
    EXPECT_TRUE(std::isfinite(est));
  }
}

// Full-rate fault injection on the rebuild oracle corrupts the domain total
// (the rotation's first faults are NaN-adjacent/negative), which the rebuild
// rejects deterministically: abort, incumbent serving.
TEST(ReinitServiceTest, FaultedRebuildOracleAbortsTheSwap) {
  DriftSetup setup = MakeDriftSetup();
  ServiceConfig config = ReinitServiceConfig(setup);
  config.reinit.rebuild_faults.rate = 1.0;
  config.reinit.rebuild_faults.seed = 5;

  RunResult result = ServePhaseOne(setup, config);
  EXPECT_GE(result.stats.reinit_triggers, 1u);
  EXPECT_EQ(result.stats.reinit_swaps_completed, 0u);
  EXPECT_GE(result.stats.reinit_swaps_aborted, 1u);
  for (double est : result.final_estimates) {
    EXPECT_TRUE(std::isfinite(est));
  }
}

// Submitting feedback without a captured estimate (the NaN default) must not
// starve the detector: the service samples its own snapshot at submit time.
TEST(ReinitServiceTest, DefaultSubmitSamplesTheServedSnapshot) {
  DriftSetup setup = MakeDriftSetup();
  ServiceConfig config = ReinitServiceConfig(setup);
  setup.oracle->SetPhase(0);
  HistogramService service(TrainOnPhase(setup, 0, 40), *setup.oracle, config);
  for (size_t i = 0; i < 8; ++i) {
    ASSERT_EQ(service.SubmitFeedback(setup.schedule.phase(0).queries[i]),
              FeedbackOutcome::kAccepted);
  }
  ASSERT_TRUE(service.Drain().ok());
  EXPECT_TRUE(std::isfinite(service.stats().rolling_nae))
      << "the detector observed nothing";
  service.Stop();
}

// Liveness during a background rebuild: with the builder parked inside the
// rebuild hook, reads and refinement both make progress, and Drain does not
// hang. This is the "hot swap never blocks readers" contract.
TEST(ReinitServiceTest, ReadsAndRefinementProgressDuringBackgroundRebuild) {
  DriftSetup setup = MakeDriftSetup();
  ServiceConfig config = ReinitServiceConfig(setup);
  config.reinit.background = true;

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool builder_entered = false;
  bool release_builder = false;
  // A valid rebuild result, prepared up front (a root-only histogram would
  // be rejected by the validation gate as no better than trivial).
  std::unique_ptr<STHoles> rebuilt_reference = TrainOnPhase(setup, 1, 40);
  const STHoles* rebuilt_raw = rebuilt_reference.get();
  config.reinit.rebuild_override = [&, rebuilt_raw](const Dataset&, double) {
    {
      std::unique_lock<std::mutex> lock(gate_mutex);
      builder_entered = true;
      gate_cv.notify_all();
      gate_cv.wait(lock, [&] { return release_builder; });
    }
    return rebuilt_raw->Clone();
  };

  setup.oracle->SetPhase(0);
  HistogramService service(TrainOnPhase(setup, 0, 40), *setup.oracle, config);
  setup.oracle->SetPhase(1);
  const Workload& queries = setup.schedule.phase(1).queries;

  // Force the trigger with deliberately garbage served estimates; the
  // builder then parks inside the override.
  size_t fed = 0;
  for (const Box& q : queries) {
    (void)service.SubmitFeedback(q, 1e7);
    ++fed;
    std::unique_lock<std::mutex> lock(gate_mutex);
    if (builder_entered) break;
  }
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    ASSERT_TRUE(gate_cv.wait_for(lock, std::chrono::seconds(10),
                                 [&] { return builder_entered; }))
        << "the trigger never started a background rebuild";
  }

  // Rebuild in flight, builder parked. Reads must serve...
  const size_t reads_before = service.stats().reads_served;
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(
        std::isfinite(service.Estimate(queries[i % queries.size()])));
  }
  EXPECT_GE(service.stats().reads_served, reads_before + 2000);
  // ...refinement must keep applying (Drain returns, not hangs)...
  for (size_t i = 0; i < 32; ++i) {
    (void)service.SubmitFeedback(queries[(fed + i) % queries.size()], 1e7);
  }
  ASSERT_TRUE(service.Drain().ok())
      << "Drain must not be held hostage by an in-flight rebuild";
  ServiceStats mid = service.stats();
  EXPECT_EQ(mid.reinit_swaps_completed, 0u) << "builder is still parked";
  EXPECT_GE(mid.reinit_triggers, 1u);

  // ...and releasing the builder completes the swap (Stop finishes it).
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release_builder = true;
  }
  gate_cv.notify_all();
  service.Stop();
  ServiceStats final_stats = service.stats();
  EXPECT_EQ(final_stats.reinit_swaps_completed, 1u);
  EXPECT_EQ(final_stats.reinit_swaps_aborted, 0u);
  EXPECT_TRUE(std::isfinite(service.Estimate(queries.front())));
}

// Destructor vs. in-flight background rebuild: destroying the service while
// the builder thread is parked inside the rebuild hook must join the builder
// cleanly — the refiner's shutdown path completes the swap (replaying the
// rebuild window) instead of leaking or detaching the thread. The gate opens
// from a separate thread only after destruction has begun, so the destructor
// is provably the one doing the join. Runs under the TSan leg.
TEST(ReinitServiceTest, DestructorJoinsParkedBackgroundBuilder) {
  DriftSetup setup = MakeDriftSetup();
  ServiceConfig config = ReinitServiceConfig(setup);
  config.reinit.background = true;

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool builder_entered = false;
  bool release_builder = false;
  std::atomic<bool> builder_returned{false};
  std::unique_ptr<STHoles> rebuilt_reference = TrainOnPhase(setup, 1, 40);
  const STHoles* rebuilt_raw = rebuilt_reference.get();
  config.reinit.rebuild_override = [&, rebuilt_raw](const Dataset&, double) {
    {
      std::unique_lock<std::mutex> lock(gate_mutex);
      builder_entered = true;
      gate_cv.notify_all();
      gate_cv.wait(lock, [&] { return release_builder; });
    }
    builder_returned.store(true);
    return rebuilt_raw->Clone();
  };

  setup.oracle->SetPhase(0);
  auto service = std::make_unique<HistogramService>(TrainOnPhase(setup, 0, 40),
                                                    *setup.oracle, config);
  setup.oracle->SetPhase(1);
  const Workload& queries = setup.schedule.phase(1).queries;

  // Garbage served estimates force the trigger; the builder parks.
  for (const Box& q : queries) {
    (void)service->SubmitFeedback(q, 1e7);
    std::unique_lock<std::mutex> lock(gate_mutex);
    if (builder_entered) break;
  }
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    ASSERT_TRUE(gate_cv.wait_for(lock, std::chrono::seconds(10),
                                 [&] { return builder_entered; }))
        << "the trigger never started a background rebuild";
  }

  // Open the gate only after the destructor has had time to reach the
  // builder join; the service must sit blocked until then, not crash or
  // return with the builder still running.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    {
      std::lock_guard<std::mutex> lock(gate_mutex);
      release_builder = true;
    }
    gate_cv.notify_all();
  });

  ServiceStats before = service->stats();
  EXPECT_EQ(before.reinit_swaps_completed, 0u) << "builder is parked";
  service.reset();  // ~HistogramService -> Stop -> refiner -> builder join.
  EXPECT_TRUE(builder_returned.load())
      << "destructor returned while the builder was still inside the hook";
  releaser.join();
}

}  // namespace
}  // namespace sthist

#include "workload/workload.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/rng.h"
#include "data/generators.h"

namespace sthist {
namespace {

TEST(WorkloadTest, QueryCountAndDimensionality) {
  Box domain = Box::Cube(3, 0, 1000);
  WorkloadConfig config;
  config.num_queries = 50;
  Workload w = MakeWorkload(domain, config);
  EXPECT_EQ(w.size(), 50u);
  for (const Box& q : w) EXPECT_EQ(q.dim(), 3u);
}

TEST(WorkloadTest, QueriesHaveExactVolumeFraction) {
  Box domain = Box::Cube(2, 0, 1000);
  WorkloadConfig config;
  config.num_queries = 200;
  config.volume_fraction = 0.01;
  Workload w = MakeWorkload(domain, config);
  for (const Box& q : w) {
    EXPECT_NEAR(q.Volume(), 0.01 * domain.Volume(), 1e-6)
        << "queries are shifted, not clipped, so volume is exact";
  }
}

TEST(WorkloadTest, QueriesStayInsideDomain) {
  Box domain({0.0, -90.0}, {360.0, 90.0});
  WorkloadConfig config;
  config.num_queries = 500;
  config.volume_fraction = 0.02;
  Workload w = MakeWorkload(domain, config);
  for (const Box& q : w) {
    EXPECT_TRUE(domain.Contains(q));
  }
}

TEST(WorkloadTest, DataCenteredQueriesFollowData) {
  // A dataset concentrated in one corner: data-centered queries must cluster
  // there while uniform ones spread out.
  Dataset data(2);
  Rng rng(3);
  Point p(2);
  for (int i = 0; i < 500; ++i) {
    p[0] = rng.Uniform(0, 100);
    p[1] = rng.Uniform(0, 100);
    data.Append(p);
  }
  Box domain = Box::Cube(2, 0, 1000);
  WorkloadConfig config;
  config.num_queries = 200;
  config.centers = CenterDistribution::kData;
  Workload w = MakeWorkload(domain, config, &data);

  Box corner = Box::Cube(2, 0, 200);
  size_t in_corner = 0;
  for (const Box& q : w) {
    if (corner.Contains(q)) ++in_corner;
  }
  EXPECT_GT(in_corner, w.size() * 9 / 10);
}

TEST(WorkloadTest, PermutedIsSameMultisetDifferentOrder) {
  Box domain = Box::Cube(2, 0, 1000);
  WorkloadConfig config;
  config.num_queries = 100;
  Workload w = MakeWorkload(domain, config);
  Workload pi = Permuted(w, 99);
  ASSERT_EQ(pi.size(), w.size());

  bool any_moved = false;
  for (size_t i = 0; i < w.size(); ++i) {
    if (!(w[i] == pi[i])) any_moved = true;
  }
  EXPECT_TRUE(any_moved);

  auto key = [](const Box& b) { return std::make_pair(b.lo(0), b.lo(1)); };
  std::vector<std::pair<double, double>> a, b;
  for (const Box& q : w) a.push_back(key(q));
  for (const Box& q : pi) b.push_back(key(q));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(WorkloadTest, DeterministicForSeed) {
  Box domain = Box::Cube(2, 0, 1000);
  WorkloadConfig config;
  config.num_queries = 20;
  Workload a = MakeWorkload(domain, config);
  Workload b = MakeWorkload(domain, config);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(GridWorkloadTest, CoversDomainExactly) {
  Box domain = Box::Cube(2, 0, 10);
  Workload w = MakeGridWorkload(domain, 10, 5);
  EXPECT_EQ(w.size(), 100u) << "10x10 unit cells";
  double total_volume = 0;
  for (const Box& q : w) {
    EXPECT_TRUE(domain.Contains(q));
    EXPECT_NEAR(q.Volume(), 1.0, 1e-12);
    total_volume += q.Volume();
  }
  EXPECT_NEAR(total_volume, domain.Volume(), 1e-9);
}

TEST(GridWorkloadTest, CellsAreDisjoint) {
  Box domain = Box::Cube(2, 0, 4);
  Workload w = MakeGridWorkload(domain, 4, 5);
  for (size_t i = 0; i < w.size(); ++i) {
    for (size_t j = i + 1; j < w.size(); ++j) {
      EXPECT_FALSE(w[i].Intersects(w[j]));
    }
  }
}

TEST(GridWorkloadTest, ThreeDimensionalGrid) {
  Box domain = Box::Cube(3, 0, 6);
  Workload w = MakeGridWorkload(domain, 3, 7);
  EXPECT_EQ(w.size(), 27u);
  for (const Box& q : w) {
    EXPECT_NEAR(q.Volume(), 8.0, 1e-12) << "cells are 2x2x2 here";
  }
}

}  // namespace
}  // namespace sthist

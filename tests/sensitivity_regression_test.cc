// δ-sensitivity regression gate: pins the Definition-1 permutation
// sensitivity of STHoles on Cross-2d — seeded (uninitialized) vs
// MineClus-initialized — to golden intervals. The paper's robustness claim
// is *quantitative*: initialization does not just help on one ordering, it
// collapses the spread across orderings. A learning-path change (drilling,
// merging, shrink heuristics, initialization order) that silently worsens
// that spread moves these numbers and fails here before it reaches a
// benchmark anyone eyeballs.
//
// Everything below is single-threaded and fully seeded, so the measured
// numbers are deterministic; the golden intervals are wide enough to absorb
// legitimate floating-point reassociation (they pin behavior, not bits).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "clustering/mineclus.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "histogram/stholes.h"
#include "init/initializer.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

constexpr uint64_t kPermutationSeeds[] = {41, 42, 43, 44, 45};

struct RegressionSetup {
  GeneratedData g;
  std::unique_ptr<Executor> executor;
  Workload train;
  Workload probes;
  std::vector<SubspaceCluster> clusters;
};

RegressionSetup MakeSetup() {
  CrossConfig data_config;  // Cross-2d at regression scale.
  data_config.tuples_per_cluster = 4000;
  data_config.noise_tuples = 800;
  RegressionSetup setup{MakeCross(data_config), {}, {}, {}, {}};
  setup.executor = std::make_unique<Executor>(setup.g.data);

  WorkloadConfig wc;
  wc.num_queries = 250;
  wc.volume_fraction = 0.01;
  wc.seed = 7;
  setup.train = MakeWorkload(setup.g.domain, wc);
  wc.seed = 77;
  setup.probes = MakeWorkload(setup.g.domain, wc);

  MineClusConfig mc;
  mc.alpha = 0.02;
  mc.width_fraction = 0.05;
  setup.clusters = RunMineClus(setup.g.data, setup.g.domain, mc);
  return setup;
}

std::unique_ptr<Histogram> MakeSeeded(const RegressionSetup& setup,
                                      bool initialize) {
  STHolesConfig config;
  config.max_buckets = 10;  // Tight budget: where order sensitivity bites.
  auto hist = std::make_unique<STHoles>(
      setup.g.domain, static_cast<double>(setup.g.data.size()), config);
  if (initialize) {
    InitializeHistogram(setup.clusters, setup.g.domain, *setup.executor,
                        InitializerConfig{}, hist.get());
  }
  return hist;
}

TEST(SensitivityRegressionTest, PinnedDeltaSensitivityIntervals) {
  RegressionSetup setup = MakeSetup();
  ASSERT_GE(setup.clusters.size(), 2u)
      << "MineClus must find the planted Cross clusters at these parameters";

  SensitivityResult uninit = PermutationSensitivity(
      [&] { return MakeSeeded(setup, false); }, setup.train, setup.probes,
      *setup.executor, kPermutationSeeds);
  SensitivityResult init = PermutationSensitivity(
      [&] { return MakeSeeded(setup, true); }, setup.train, setup.probes,
      *setup.executor, kPermutationSeeds);

  // Always print the measurements: when a golden breaks, the re-pinning
  // values are right here in the log instead of needing a debug build.
  std::printf("uninit: base_error=%.6f max_delta=%.6f relative=%.6f\n",
              uninit.base_error, uninit.max_delta, uninit.relative());
  std::printf("init:   base_error=%.6f max_delta=%.6f relative=%.6f\n",
              init.base_error, init.max_delta, init.relative());

  // Both variants must have learned something: errors are positive, finite.
  EXPECT_TRUE(std::isfinite(uninit.base_error));
  EXPECT_TRUE(std::isfinite(init.base_error));
  EXPECT_GT(uninit.base_error, 0.0);
  EXPECT_GT(init.base_error, 0.0);

  // Golden interval, uninitialized: the tight-budget histogram is visibly
  // order-sensitive on Cross-2d — permutations move the error by a double-
  // digit percentage of its base value (measured 0.158 when pinned).
  EXPECT_GE(uninit.relative(), 0.10)
      << "uninitialized delta-sensitivity collapsed: either the learning "
         "path became order-invariant (update the goldens with the printed "
         "measurement) or the sensitivity measurement broke";
  EXPECT_LE(uninit.relative(), 0.25)
      << "uninitialized delta-sensitivity grew past the pinned band";

  // Definition 1 is an *absolute* error delta, and that is the claim worth
  // pinning: initialization shrinks the spread permutations can cause
  // (measured 6.66 vs 9.25 when pinned). The relative ratio is deliberately
  // NOT compared across variants — initialization halves the base error, so
  // dividing by it flatters the uninitialized histogram.
  EXPECT_LT(init.max_delta, 0.9 * uninit.max_delta)
      << "initialization no longer shrinks the Definition-1 permutation "
         "delta";

  // Accuracy relations, with margin over the pinned measurements
  // (base 28.70 vs 58.45; worst-permutation 35.36 vs base 58.45):
  // initialization halves the base error, and even its worst permutation
  // beats the uninitialized histogram's best ordering comfortably.
  EXPECT_LT(init.base_error, 0.65 * uninit.base_error);
  EXPECT_LT(init.base_error + init.max_delta, 0.75 * uninit.base_error);
}

}  // namespace
}  // namespace sthist

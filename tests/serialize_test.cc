#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/generators.h"
#include "histogram/stholes.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

STHolesConfig Budget(size_t buckets) {
  STHolesConfig config;
  config.max_buckets = buckets;
  return config;
}

TEST(SerializeTest, FreshHistogramRoundTrips) {
  STHoles h(Box::Cube(3, 0, 100), 1234, Budget(10));
  std::string text = h.Serialize();
  auto loaded = STHoles::Deserialize(text, Budget(10));
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->bucket_count(), 0u);
  EXPECT_DOUBLE_EQ(loaded->Estimate(Box::Cube(3, 0, 100)), 1234.0);
  EXPECT_EQ(loaded->Serialize(), text);
}

TEST(SerializeTest, TrainedHistogramRoundTripsBitExact) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 2000;
  data_config.noise_tuples = 400;
  GeneratedData g = MakeCross(data_config);
  Executor executor(g.data);

  STHoles h(g.domain, static_cast<double>(g.data.size()), Budget(40));
  WorkloadConfig wc;
  wc.num_queries = 150;
  Workload w = MakeWorkload(g.domain, wc);
  for (const Box& q : w) h.Refine(q, executor);

  std::string text = h.Serialize();
  auto loaded = STHoles::Deserialize(text, Budget(40));
  ASSERT_NE(loaded, nullptr);
  loaded->CheckInvariants();
  EXPECT_EQ(loaded->bucket_count(), h.bucket_count());
  EXPECT_EQ(loaded->Serialize(), text) << "round trip is bit exact";

  wc.seed = 99;
  Workload probes = MakeWorkload(g.domain, wc);
  for (const Box& q : probes) {
    EXPECT_DOUBLE_EQ(loaded->Estimate(q), h.Estimate(q));
  }
}

TEST(SerializeTest, DeserializedHistogramKeepsLearning) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 1000;
  data_config.noise_tuples = 200;
  GeneratedData g = MakeCross(data_config);
  Executor executor(g.data);

  STHoles h(g.domain, static_cast<double>(g.data.size()), Budget(20));
  h.Refine(Box::Cube(2, 400, 600), executor);
  auto loaded = STHoles::Deserialize(h.Serialize(), Budget(20));
  ASSERT_NE(loaded, nullptr);
  loaded->Refine(Box::Cube(2, 100, 300), executor);
  loaded->CheckInvariants();
  EXPECT_GT(loaded->bucket_count(), h.bucket_count() - 1);
}

TEST(SerializeTest, GarbageIsRejected) {
  EXPECT_EQ(STHoles::Deserialize("", Budget(10)), nullptr);
  EXPECT_EQ(STHoles::Deserialize("not a histogram", Budget(10)), nullptr);
  EXPECT_EQ(STHoles::Deserialize("STHoles v1 dim=0 buckets=1\n", Budget(10)),
            nullptr);
}

TEST(SerializeTest, TruncatedInputIsRejected) {
  STHoles h(Box::Cube(2, 0, 100), 10, Budget(10));
  Dataset data(2);
  data.Append(Point{50.0, 50.0});
  Executor executor(data);
  h.Refine(Box::Cube(2, 40, 60), executor);
  std::string text = h.Serialize();
  EXPECT_EQ(STHoles::Deserialize(text.substr(0, text.size() / 2), Budget(10)),
            nullptr);
}

TEST(SerializeTest, OverlappingSiblingsAreRejected) {
  std::string bad =
      "STHoles v1 dim=1 buckets=3\n"
      "0 0 100 10\n"
      "1 10 30 1\n"
      "1 20 40 1\n";  // Overlaps the previous child.
  EXPECT_EQ(STHoles::Deserialize(bad, Budget(10)), nullptr);
}

TEST(SerializeTest, ChildEscapingParentIsRejected) {
  std::string bad =
      "STHoles v1 dim=1 buckets=2\n"
      "0 0 100 10\n"
      "1 50 150 1\n";
  EXPECT_EQ(STHoles::Deserialize(bad, Budget(10)), nullptr);
}

TEST(SerializeTest, DepthJumpIsRejected) {
  std::string bad =
      "STHoles v1 dim=1 buckets=2\n"
      "0 0 100 10\n"
      "2 10 20 1\n";  // Depth 2 with no depth-1 ancestor.
  EXPECT_EQ(STHoles::Deserialize(bad, Budget(10)), nullptr);
}

TEST(SerializeTest, NegativeFrequencyIsRejected) {
  std::string bad =
      "STHoles v1 dim=1 buckets=2\n"
      "0 0 100 10\n"
      "1 10 20 -5\n";
  EXPECT_EQ(STHoles::Deserialize(bad, Budget(10)), nullptr);
}

}  // namespace
}  // namespace sthist

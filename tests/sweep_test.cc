#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "core/thread_pool.h"
#include "data/generators.h"
#include "eval/runner.h"

namespace sthist {
namespace {

GeneratedData SmallCross() {
  CrossConfig config;
  config.tuples_per_cluster = 1500;
  config.noise_tuples = 300;
  return MakeCross(config);
}

// A mixed grid: uninitialized cells, initialized cells with two distinct
// MineClus parameter sets (exercising the shared cluster cache), a faulty
// cell, and a frozen/degenerate cell.
std::vector<ExperimentConfig> MixedGrid() {
  std::vector<ExperimentConfig> configs;

  ExperimentConfig base;
  base.buckets = 25;
  base.train_queries = 80;
  base.sim_queries = 80;

  for (uint64_t seed : {21u, 22u, 23u}) {
    ExperimentConfig uninit = base;
    uninit.workload_seed = seed;
    configs.push_back(uninit);

    ExperimentConfig init = uninit;
    init.initialize = true;
    init.mineclus.alpha = 0.05;
    configs.push_back(init);

    init.mineclus.alpha = 0.08;  // Second distinct cluster-cache entry.
    configs.push_back(init);
  }

  ExperimentConfig faulty = base;
  faulty.faults.rate = 0.1;
  configs.push_back(faulty);

  ExperimentConfig frozen = base;
  frozen.train_queries = 0;
  frozen.learn_during_sim = false;
  configs.push_back(frozen);

  return configs;
}

// Bitwise equality over the deterministic result fields. The wall-clock
// fields (clustering/train/sim seconds) are excluded by contract.
void ExpectSameResults(const std::vector<ExperimentResult>& a,
                       const std::vector<ExperimentResult>& b,
                       const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(std::string(label) + ", cell " + std::to_string(i));
    EXPECT_EQ(a[i].mae, b[i].mae);
    EXPECT_EQ(a[i].trivial_mae, b[i].trivial_mae);
    EXPECT_EQ(a[i].nae, b[i].nae);
    EXPECT_EQ(a[i].final_buckets, b[i].final_buckets);
    EXPECT_EQ(a[i].subspace_buckets, b[i].subspace_buckets);
    EXPECT_EQ(a[i].clusters_found, b[i].clusters_found);
    EXPECT_EQ(a[i].clusters_fed, b[i].clusters_fed);
    EXPECT_EQ(a[i].robustness.rejected_queries,
              b[i].robustness.rejected_queries);
    EXPECT_EQ(a[i].robustness.sanitized_queries,
              b[i].robustness.sanitized_queries);
    EXPECT_EQ(a[i].robustness.clamped_feedback,
              b[i].robustness.clamped_feedback);
    EXPECT_EQ(a[i].robustness.repaired_buckets,
              b[i].robustness.repaired_buckets);
    EXPECT_EQ(a[i].faults_injected, b[i].faults_injected);
  }
}

TEST(RunSweepTest, ResultsIdenticalAcrossThreadCounts) {
  std::vector<ExperimentConfig> configs = MixedGrid();

  // Fresh Experiment per thread count so cache warm-up order can't help:
  // each run must reproduce every cell from scratch.
  Experiment serial(SmallCross());
  std::vector<ExperimentResult> one = RunSweep(serial, configs, 1);

  Experiment two_threads(SmallCross());
  std::vector<ExperimentResult> two = RunSweep(two_threads, configs, 2);

  Experiment eight_threads(SmallCross());
  std::vector<ExperimentResult> eight = RunSweep(eight_threads, configs, 8);

  ExpectSameResults(one, two, "1 vs 2 threads");
  ExpectSameResults(one, eight, "1 vs 8 threads");
}

TEST(RunSweepTest, MatchesSequentialRunOnSharedExperiment) {
  // A sweep on an Experiment that already served cells (warm cache) agrees
  // with direct Run calls.
  Experiment experiment(SmallCross());
  std::vector<ExperimentConfig> configs = MixedGrid();
  std::vector<ExperimentResult> sequential;
  for (const ExperimentConfig& config : configs) {
    sequential.push_back(experiment.Run(config));
  }
  std::vector<ExperimentResult> swept = RunSweep(experiment, configs, 8);
  ExpectSameResults(sequential, swept, "sequential vs swept");
}

TEST(RunSweepTest, DegenerateCellReportsNanNae) {
  // All-noise dataset with tiny queries can't go degenerate; instead build
  // a workload whose trivial baseline is exact: an empty-ish uniform cell
  // grid is hard to force, so assert the contract directly on a frozen
  // zero-train cell: nae is finite here, NaN only when trivial_mae == 0.
  // The unit-level NaN path is covered in runner_test; this guards the
  // sweep path end-to-end: no cell may report nae == 0 with nonzero mae.
  Experiment experiment(SmallCross());
  std::vector<ExperimentResult> results =
      RunSweep(experiment, MixedGrid(), 4);
  for (const ExperimentResult& r : results) {
    if (r.mae > 0.0) {
      EXPECT_TRUE(std::isnan(r.nae) || r.nae > 0.0)
          << "a nonzero-error cell must not report a perfect NAE";
    }
  }
}

// Stress: many threads hammer one Experiment's shared executor and cluster
// cache at once — same configs, distinct configs, and full cells mixed.
// Run under TSan/ASan in CI, this is the structural race detector for the
// parallel layer.
TEST(RunSweepTest, ConcurrentClusterCacheAndExecutorStress) {
  Experiment experiment(SmallCross());

  constexpr size_t kThreads = 8;
  constexpr size_t kIterations = 4;
  std::vector<std::thread> threads;
  std::vector<const std::vector<SubspaceCluster>*> first_refs(kThreads,
                                                              nullptr);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kIterations; ++i) {
        // Rotate over a few distinct MineClus configs so threads both race
        // on the same entry and append new entries concurrently.
        MineClusConfig mc;
        mc.alpha = 0.04 + 0.01 * static_cast<double>((t + i) % 4);
        const std::vector<SubspaceCluster>& clusters =
            experiment.Clusters(mc);
        if (first_refs[t] == nullptr && mc.alpha == 0.04) {
          first_refs[t] = &clusters;
        }

        // Hammer the shared read-only executor.
        Box probe = experiment.domain();
        (void)experiment.executor().Count(probe);

        // And a couple of full cells, initialized + faulty.
        ExperimentConfig config;
        config.buckets = 15;
        config.train_queries = 20;
        config.sim_queries = 20;
        config.workload_seed = 100 + t;
        config.initialize = (i % 2 == 0);
        config.mineclus = mc;
        if (i % 3 == 0) config.faults.rate = 0.2;
        ExperimentResult result = experiment.Run(config);
        EXPECT_GE(result.trivial_mae, 0.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Every reference captured for the same config aliases one cache entry,
  // still valid after all concurrent insertions.
  MineClusConfig mc;
  mc.alpha = 0.04;
  const std::vector<SubspaceCluster>& canonical = experiment.Clusters(mc);
  for (const auto* ref : first_refs) {
    if (ref != nullptr) {
      EXPECT_EQ(ref, &canonical);
    }
  }
}

}  // namespace
}  // namespace sthist

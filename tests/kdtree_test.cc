#include "index/kdtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/rng.h"
#include "data/generators.h"

namespace sthist {
namespace {

TEST(KdTreeTest, EmptyDataset) {
  Dataset data(2);
  KdTree tree(data);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Count(Box::Cube(2, -100, 100)), 0u);
}

TEST(KdTreeTest, SinglePoint) {
  Dataset data(2);
  data.Append(Point{1.0, 2.0});
  KdTree tree(data);
  EXPECT_EQ(tree.Count(Box({0.0, 0.0}, {2.0, 3.0})), 1u);
  EXPECT_EQ(tree.Count(Box({5.0, 5.0}, {6.0, 6.0})), 0u);
  // Boundary point counts (closed intervals).
  EXPECT_EQ(tree.Count(Box({1.0, 2.0}, {9.0, 9.0})), 1u);
}

TEST(KdTreeTest, DuplicatePointsAllCounted) {
  Dataset data(2);
  for (int i = 0; i < 100; ++i) data.Append(Point{3.0, 3.0});
  KdTree tree(data, /*leaf_size=*/4);
  EXPECT_EQ(tree.Count(Box({2.0, 2.0}, {4.0, 4.0})), 100u);
  EXPECT_EQ(tree.Count(Box({3.5, 3.5}, {4.0, 4.0})), 0u);
}

TEST(KdTreeTest, CollectReturnsExactRows) {
  Dataset data(1);
  for (int i = 0; i < 10; ++i) data.Append(Point{static_cast<double>(i)});
  KdTree tree(data, /*leaf_size=*/2);
  std::vector<size_t> rows;
  tree.Collect(Box({2.5}, {6.5}), &rows);
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, (std::vector<size_t>{3, 4, 5, 6}));
}

// Property sweep across dimensionalities and leaf sizes: the tree must agree
// with a naive scan on random data and random queries.
struct KdParam {
  size_t dim;
  size_t leaf_size;
  uint64_t seed;
};

class KdTreeAgreementTest : public ::testing::TestWithParam<KdParam> {};

TEST_P(KdTreeAgreementTest, MatchesNaiveScan) {
  const KdParam param = GetParam();
  Rng rng(param.seed);
  Dataset data(param.dim);
  Point p(param.dim);
  for (int i = 0; i < 2000; ++i) {
    for (size_t d = 0; d < param.dim; ++d) p[d] = rng.Uniform(0, 100);
    data.Append(p);
  }
  KdTree tree(data, param.leaf_size);

  for (int q = 0; q < 100; ++q) {
    std::vector<double> lo(param.dim), hi(param.dim);
    for (size_t d = 0; d < param.dim; ++d) {
      double a = rng.Uniform(0, 100), b = rng.Uniform(0, 100);
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    Box box(lo, hi);
    EXPECT_EQ(tree.Count(box), data.CountInBox(box));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeAgreementTest,
    ::testing::Values(KdParam{1, 1, 1}, KdParam{1, 32, 2}, KdParam{2, 4, 3},
                      KdParam{3, 16, 4}, KdParam{5, 32, 5}, KdParam{7, 64, 6},
                      KdParam{2, 2048, 7} /* degenerates to a scan */));

TEST(KdTreeTest, ClusteredDataAgreesWithScan) {
  CrossConfig config;
  config.tuples_per_cluster = 2000;
  config.noise_tuples = 400;
  GeneratedData g = MakeCross(config);
  KdTree tree(g.data);
  Rng rng(17);
  for (int q = 0; q < 50; ++q) {
    std::vector<double> lo(2), hi(2);
    for (size_t d = 0; d < 2; ++d) {
      double a = rng.Uniform(0, 1000), b = rng.Uniform(0, 1000);
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    Box box(lo, hi);
    EXPECT_EQ(tree.Count(box), g.data.CountInBox(box));
  }
}

TEST(KdTreeTest, FullDomainQueryCountsEverything) {
  GaussConfig config;
  config.cluster_tuples = 3000;
  config.noise_tuples = 300;
  GeneratedData g = MakeGauss(config);
  KdTree tree(g.data);
  EXPECT_EQ(tree.Count(g.domain), g.data.size());
}

}  // namespace
}  // namespace sthist

#include "eval/runner.h"

#include <gtest/gtest.h>

namespace sthist {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.buckets = 30;
  config.train_queries = 150;
  config.sim_queries = 150;
  config.mineclus.alpha = 0.05;
  return config;
}

TEST(RunnerTest, UninitializedRunProducesSaneNumbers) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 2000;
  data_config.noise_tuples = 400;
  Experiment experiment(MakeCross(data_config));

  ExperimentResult result = experiment.Run(SmallConfig());
  EXPECT_GT(result.mae, 0.0);
  EXPECT_GT(result.trivial_mae, 0.0);
  EXPECT_NEAR(result.nae, result.mae / result.trivial_mae, 1e-12);
  EXPECT_LE(result.final_buckets, 30u);
  EXPECT_EQ(result.clusters_found, 0u);
  EXPECT_EQ(result.clusters_fed, 0u);
  EXPECT_DOUBLE_EQ(result.clustering_seconds, 0.0);
}

TEST(RunnerTest, InitializedRunBeatsUninitialized) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 4000;
  data_config.noise_tuples = 800;
  Experiment experiment(MakeCross(data_config));

  ExperimentConfig config = SmallConfig();
  ExperimentResult uninit = experiment.Run(config);
  config.initialize = true;
  ExperimentResult init = experiment.Run(config);

  EXPECT_GT(init.clusters_found, 0u);
  EXPECT_GT(init.clusters_fed, 0u);
  EXPECT_LT(init.nae, uninit.nae)
      << "the paper's headline effect on its simplest dataset";
}

TEST(RunnerTest, ClusterCacheReturnsSameObject) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 1000;
  data_config.noise_tuples = 200;
  Experiment experiment(MakeCross(data_config));

  MineClusConfig mc;
  const std::vector<SubspaceCluster>& a = experiment.Clusters(mc);
  const std::vector<SubspaceCluster>& b = experiment.Clusters(mc);
  EXPECT_EQ(&a, &b) << "same parameters hit the cache";

  mc.alpha = 0.07;
  const std::vector<SubspaceCluster>& c = experiment.Clusters(mc);
  EXPECT_NE(&a, &c) << "different parameters re-cluster";
}

TEST(RunnerTest, WorkloadsAreDeterministicPerConfig) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 500;
  data_config.noise_tuples = 100;
  Experiment experiment(MakeCross(data_config));

  ExperimentConfig config = SmallConfig();
  auto [train1, sim1] = experiment.MakeWorkloads(config);
  auto [train2, sim2] = experiment.MakeWorkloads(config);
  ASSERT_EQ(train1.size(), train2.size());
  for (size_t i = 0; i < train1.size(); ++i) {
    EXPECT_EQ(train1[i], train2[i]);
  }
  // Training and simulation workloads differ (different seeds).
  EXPECT_FALSE(train1[0] == sim1[0]);
}

TEST(RunnerTest, LearnDuringSimCanBeDisabled) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 2000;
  data_config.noise_tuples = 400;
  Experiment experiment(MakeCross(data_config));

  ExperimentConfig config = SmallConfig();
  config.train_queries = 0;  // Frozen, untrained histogram.
  config.learn_during_sim = false;
  ExperimentResult frozen = experiment.Run(config);
  // A frozen uniform histogram's NAE is exactly 1: it *is* the trivial
  // histogram.
  EXPECT_NEAR(frozen.nae, 1.0, 1e-9);
  EXPECT_EQ(frozen.final_buckets, 0u);
}

TEST(RunnerTest, ReversedInitializationRunsAndFeedsSameClusters) {
  // The reversed-order control (Fig. 13) must feed the same cluster set;
  // whether the resulting error differs depends on cluster overlap, which
  // the sensitivity and initializer tests cover deterministically.
  GaussConfig data_config;
  data_config.cluster_tuples = 8000;
  data_config.noise_tuples = 800;
  Experiment experiment(MakeGauss(data_config));

  ExperimentConfig config = SmallConfig();
  config.buckets = 10;
  config.initialize = true;
  ExperimentResult normal = experiment.Run(config);
  config.initializer.reversed = true;
  ExperimentResult reversed = experiment.Run(config);
  EXPECT_EQ(normal.clusters_fed, reversed.clusters_fed);
  EXPECT_GT(reversed.mae, 0.0);
  EXPECT_LE(reversed.final_buckets, 10u);
}

}  // namespace
}  // namespace sthist

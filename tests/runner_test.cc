#include "eval/runner.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sthist {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.buckets = 30;
  config.train_queries = 150;
  config.sim_queries = 150;
  config.mineclus.alpha = 0.05;
  return config;
}

TEST(RunnerTest, UninitializedRunProducesSaneNumbers) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 2000;
  data_config.noise_tuples = 400;
  Experiment experiment(MakeCross(data_config));

  ExperimentResult result = experiment.Run(SmallConfig());
  EXPECT_GT(result.mae, 0.0);
  EXPECT_GT(result.trivial_mae, 0.0);
  EXPECT_NEAR(result.nae, result.mae / result.trivial_mae, 1e-12);
  EXPECT_LE(result.final_buckets, 30u);
  EXPECT_EQ(result.clusters_found, 0u);
  EXPECT_EQ(result.clusters_fed, 0u);
  EXPECT_DOUBLE_EQ(result.clustering_seconds, 0.0);
}

TEST(RunnerTest, InitializedRunBeatsUninitialized) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 4000;
  data_config.noise_tuples = 800;
  Experiment experiment(MakeCross(data_config));

  ExperimentConfig config = SmallConfig();
  ExperimentResult uninit = experiment.Run(config);
  config.initialize = true;
  ExperimentResult init = experiment.Run(config);

  EXPECT_GT(init.clusters_found, 0u);
  EXPECT_GT(init.clusters_fed, 0u);
  EXPECT_LT(init.nae, uninit.nae)
      << "the paper's headline effect on its simplest dataset";
}

TEST(RunnerTest, ClusterCacheReturnsSameObject) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 1000;
  data_config.noise_tuples = 200;
  Experiment experiment(MakeCross(data_config));

  MineClusConfig mc;
  const std::vector<SubspaceCluster>& a = experiment.Clusters(mc);
  const std::vector<SubspaceCluster>& b = experiment.Clusters(mc);
  EXPECT_EQ(&a, &b) << "same parameters hit the cache";

  mc.alpha = 0.07;
  const std::vector<SubspaceCluster>& c = experiment.Clusters(mc);
  EXPECT_NE(&a, &c) << "different parameters re-cluster";
}

TEST(RunnerTest, ClusterCacheReferencesSurviveNewEntries) {
  // Regression: the cache used std::vector storage, so the reference
  // returned for the first config dangled as soon as enough later configs
  // forced a reallocation — a use-after-free that ASan flags on the reads
  // below. Deque storage keeps every returned reference valid.
  CrossConfig data_config;
  data_config.tuples_per_cluster = 800;
  data_config.noise_tuples = 160;
  Experiment experiment(MakeCross(data_config));

  MineClusConfig first_config;
  first_config.alpha = 0.05;
  const std::vector<SubspaceCluster>& first =
      experiment.Clusters(first_config);
  const size_t first_count = first.size();

  // Interleave several distinct configs to grow the cache well past any
  // initial vector capacity.
  for (int i = 1; i <= 6; ++i) {
    MineClusConfig other = first_config;
    other.alpha = 0.05 + 0.01 * i;
    experiment.Clusters(other);
    // Read through the old reference after every insertion.
    ASSERT_EQ(first.size(), first_count) << "after " << i << " insertions";
    for (const SubspaceCluster& cluster : first) {
      EXPECT_FALSE(cluster.relevant_dims.empty());
    }
  }
  EXPECT_EQ(&first, &experiment.Clusters(first_config))
      << "the entry must still be the cached one, not a recomputation";
}

TEST(RunnerTest, DegenerateTrivialBaselineReportsNanNae) {
  // Full-domain queries: the trivial histogram answers them exactly, so
  // trivial_mae == 0 and there is nothing to normalize against. The old
  // behaviour reported nae == 0.0 — indistinguishable from a perfect
  // histogram; it must be NaN instead.
  CrossConfig data_config;
  data_config.tuples_per_cluster = 500;
  data_config.noise_tuples = 100;
  Experiment experiment(MakeCross(data_config));

  ExperimentConfig config;
  config.buckets = 10;
  config.train_queries = 20;
  config.sim_queries = 20;
  config.volume_fraction = 1.0;  // Every query covers the whole domain.
  ExperimentResult result = experiment.Run(config);
  EXPECT_EQ(result.trivial_mae, 0.0);
  EXPECT_TRUE(std::isnan(result.nae))
      << "nae=" << result.nae << " must be NaN, not a fake perfect score";
}

TEST(RunnerTest, ConsecutiveWorkloadSeedsDoNotAlias) {
  // Regression: sim used workload_seed + 1, so cell N's evaluation stream
  // was exactly cell N+1's training stream — a sweep over consecutive
  // seeds trained on its own test set. Streams are hash-derived now.
  CrossConfig data_config;
  data_config.tuples_per_cluster = 400;
  data_config.noise_tuples = 80;
  Experiment experiment(MakeCross(data_config));

  ExperimentConfig cell_a = SmallConfig();
  cell_a.train_queries = 50;
  cell_a.sim_queries = 50;
  cell_a.workload_seed = 21;
  ExperimentConfig cell_b = cell_a;
  cell_b.workload_seed = 22;

  auto [train_a, sim_a] = experiment.MakeWorkloads(cell_a);
  auto [train_b, sim_b] = experiment.MakeWorkloads(cell_b);

  // The old scheme had sim_a == train_b query-for-query.
  ASSERT_EQ(sim_a.size(), train_b.size());
  size_t shared = 0;
  for (size_t i = 0; i < sim_a.size(); ++i) {
    if (sim_a[i] == train_b[i]) ++shared;
  }
  EXPECT_EQ(shared, 0u)
      << "cell 21's evaluation queries reappear in cell 22's training set";
}

TEST(RunnerTest, WorkloadsAreDeterministicPerConfig) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 500;
  data_config.noise_tuples = 100;
  Experiment experiment(MakeCross(data_config));

  ExperimentConfig config = SmallConfig();
  auto [train1, sim1] = experiment.MakeWorkloads(config);
  auto [train2, sim2] = experiment.MakeWorkloads(config);
  ASSERT_EQ(train1.size(), train2.size());
  for (size_t i = 0; i < train1.size(); ++i) {
    EXPECT_EQ(train1[i], train2[i]);
  }
  // Training and simulation workloads differ (different seeds).
  EXPECT_FALSE(train1[0] == sim1[0]);
}

TEST(RunnerTest, LearnDuringSimCanBeDisabled) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 2000;
  data_config.noise_tuples = 400;
  Experiment experiment(MakeCross(data_config));

  ExperimentConfig config = SmallConfig();
  config.train_queries = 0;  // Frozen, untrained histogram.
  config.learn_during_sim = false;
  ExperimentResult frozen = experiment.Run(config);
  // A frozen uniform histogram's NAE is exactly 1: it *is* the trivial
  // histogram.
  EXPECT_NEAR(frozen.nae, 1.0, 1e-9);
  EXPECT_EQ(frozen.final_buckets, 0u);
}

TEST(RunnerTest, ReversedInitializationRunsAndFeedsSameClusters) {
  // The reversed-order control (Fig. 13) must feed the same cluster set;
  // whether the resulting error differs depends on cluster overlap, which
  // the sensitivity and initializer tests cover deterministically.
  GaussConfig data_config;
  data_config.cluster_tuples = 8000;
  data_config.noise_tuples = 800;
  Experiment experiment(MakeGauss(data_config));

  ExperimentConfig config = SmallConfig();
  config.buckets = 10;
  config.initialize = true;
  ExperimentResult normal = experiment.Run(config);
  config.initializer.reversed = true;
  ExperimentResult reversed = experiment.Run(config);
  EXPECT_EQ(normal.clusters_fed, reversed.clusters_fed);
  EXPECT_GT(reversed.mae, 0.0);
  EXPECT_LE(reversed.final_buckets, 10u);
}

}  // namespace
}  // namespace sthist

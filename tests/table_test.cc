#include "eval/table.h"

#include <gtest/gtest.h>

#include <limits>

namespace sthist {
namespace {

TEST(TableTest, RendersHeaderRuleAndRows) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"beta", "22"});
  std::string out = table.ToString();
  EXPECT_EQ(out,
            "| name  | value |\n"
            "|-------|-------|\n"
            "| alpha | 1     |\n"
            "| beta  | 22    |\n");
}

TEST(TableTest, ColumnsWidenToContent) {
  TablePrinter table({"x"});
  table.AddRow({"longer-than-header"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| longer-than-header |"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| 1 |"), std::string::npos);
}

TEST(TableTest, EmptyTableIsJustHeader) {
  TablePrinter table({"only"});
  std::string out = table.ToString();
  EXPECT_EQ(out, "| only |\n|------|\n");
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatSize(42), "42");
  EXPECT_EQ(FormatSize(0), "0");
}

TEST(TableTest, NanRendersAsNotAvailable) {
  // Degenerate metrics (NAE with a zero-error trivial baseline) are NaN
  // and must render as "n/a", never as a number.
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::quiet_NaN(), 3),
            "n/a");
}

}  // namespace
}  // namespace sthist

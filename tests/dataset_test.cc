#include "data/dataset.h"

#include <gtest/gtest.h>

namespace sthist {
namespace {

TEST(DatasetTest, AppendAndAccess) {
  Dataset data(3);
  data.Append(Point{1.0, 2.0, 3.0});
  data.Append(Point{4.0, 5.0, 6.0});
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.dim(), 3u);
  EXPECT_DOUBLE_EQ(data.value(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(data.value(1, 2), 6.0);
  std::span<const double> row = data.row(1);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  EXPECT_DOUBLE_EQ(row[1], 5.0);
}

TEST(DatasetTest, EmptyDatasetHasSizeZero) {
  Dataset data(4);
  EXPECT_EQ(data.size(), 0u);
}

TEST(DatasetTest, BoundsIsTight) {
  Dataset data(2);
  data.Append(Point{1.0, 10.0});
  data.Append(Point{-5.0, 3.0});
  data.Append(Point{2.0, 7.0});
  Box b = data.Bounds();
  EXPECT_EQ(b, Box({-5.0, 3.0}, {2.0, 10.0}));
}

TEST(DatasetTest, BoundsOfSubset) {
  Dataset data(2);
  data.Append(Point{0.0, 0.0});
  data.Append(Point{10.0, 10.0});
  data.Append(Point{5.0, 5.0});
  std::vector<size_t> rows = {0, 2};
  Box b = data.BoundsOf(rows);
  EXPECT_EQ(b, Box({0.0, 0.0}, {5.0, 5.0}));
}

TEST(DatasetTest, CountInBoxClosedIntervals) {
  Dataset data(2);
  data.Append(Point{0.0, 0.0});
  data.Append(Point{1.0, 1.0});
  data.Append(Point{0.5, 0.5});
  data.Append(Point{2.0, 2.0});
  EXPECT_EQ(data.CountInBox(Box({0.0, 0.0}, {1.0, 1.0})), 3u);
  EXPECT_EQ(data.CountInBox(Box({1.5, 1.5}, {3.0, 3.0})), 1u);
  EXPECT_EQ(data.CountInBox(Box({5.0, 5.0}, {6.0, 6.0})), 0u);
}

TEST(DatasetTest, SingleTupleBoundsIsDegenerate) {
  Dataset data(2);
  data.Append(Point{3.0, 4.0});
  Box b = data.Bounds();
  EXPECT_EQ(b, Box({3.0, 4.0}, {3.0, 4.0}));
  EXPECT_DOUBLE_EQ(b.Volume(), 0.0);
}

}  // namespace
}  // namespace sthist
